"""Fig. 8 — latency estimations vs ground truth for ResNet TRNs.

The paper plots, over ResNet-50's cutpoints, the measured latency against
the profiler-based estimate and the analytical (RBF-SVR) estimate, noting
that the SVR adapts to the non-linearities of the ground truth while linear
regression cannot.
"""

import numpy as np
import pytest

from repro.estimators import relative_error
from repro.trim import removed_node_set

from conftest import emit


@pytest.fixture(scope="module")
def resnet_series(wb, latency_points):
    """(blocks_removed, truth, profiler, svr, linear) for ResNet-50 cuts."""
    points = [p for p in latency_points if p.base_name == "resnet50"]
    base = wb.base("resnet50")
    profiler = wb.profiler_adapter()._estimator_for(base)
    prof = np.array([profiler.estimate(removed_node_set(base, p.cut_node))
                     for p in points])
    svr_model, _ = wb.analytical_model("rbf")
    lin_model, _ = wb.analytical_model("linear-ols")
    feats = [p.features for p in points]
    return (np.array([p.blocks_removed for p in points]),
            np.array([p.measured_ms for p in points]),
            prof, svr_model.predict(feats), lin_model.predict(feats))


def test_fig08_estimates_track_ground_truth(resnet_series, benchmark):
    blocks, truth, prof, svr, lin = resnet_series
    lines = [f"{'blocks_removed':>14} {'measured':>9} {'profiler':>9} "
             f"{'svr':>9} {'linear':>9}"]
    for k, t, p, s, li in zip(blocks, truth, prof, svr, lin):
        lines.append(f"{k:>14d} {t:>9.3f} {p:>9.3f} {s:>9.3f} {li:>9.3f}")
    emit("fig08_resnet_estimates", lines)

    prof_err = benchmark(relative_error, prof, truth)
    svr_err = relative_error(svr, truth)
    lin_err = relative_error(lin, truth)
    # both paper estimators track the truth closely; linear does not
    assert prof_err < 5.0
    assert svr_err < 10.0
    assert lin_err > svr_err


def test_fig08_svr_captures_nonlinearity(resnet_series, benchmark):
    """The structure the paper highlights: on ResNet's cutpoints the
    RBF-SVR tracks the curved ground truth far better than the *global
    linear model* over the same features (Fig. 8 shows the linear curve
    visibly diverging)."""
    _, truth, _, svr, lin = resnet_series

    def rmse_pair():
        svr_rmse = float(np.sqrt(np.mean((svr - truth) ** 2)))
        lin_rmse = float(np.sqrt(np.mean((lin - truth) ** 2)))
        return svr_rmse, lin_rmse

    svr_rmse, lin_rmse = benchmark(rmse_pair)
    assert svr_rmse < 0.6 * lin_rmse


def test_fig08_estimates_monotone_in_cut_depth(resnet_series, benchmark):
    """Deeper cuts must estimate faster, for both estimators."""
    blocks, _, prof, svr, _ = resnet_series
    order = np.argsort(blocks)

    def violations(series):
        s = series[order]
        return int(np.sum(np.diff(s) > 0.02))  # allow tiny wiggles

    assert benchmark(violations, prof) == 0
    assert violations(svr) <= 2
