"""Tests for the bench-regression gate (repro.obs.gate + scripts/bench_gate.py)."""

import copy
import json
import os
import subprocess
import sys

import pytest

from repro.obs import (
    DEFAULT_RULES,
    GateRule,
    evaluate_gate,
    load_bench_dir,
    run_gate,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SERVE = {
    "results": {
        "serve_1x": {"miss_rate": 0.05, "admitted_rps": 1000.0,
                     "p99_ms": 2.5},
    },
}
FORWARD = {
    "nets": {
        "mobilenet": {"speedup": 3.0, "samples_per_sec": 5000.0},
    },
}


def _payloads(**overrides):
    base = {"BENCH_serve": copy.deepcopy(SERVE),
            "BENCH_forward": copy.deepcopy(FORWARD)}
    base.update(overrides)
    return base


class TestGateRules:
    def test_ratio_floor(self):
        rule = GateRule("*", min_ratio=0.85)
        assert rule.check(100.0, 90.0) is None
        assert rule.check(100.0, 85.0) is None
        assert "0.85x baseline" in rule.check(100.0, 84.0)

    def test_absolute_increase_cap(self):
        rule = GateRule("*", max_abs_increase=0.02)
        assert rule.check(0.05, 0.07) is None
        assert rule.check(0.05, 0.0701) is not None
        assert rule.check(0.05, 0.01) is None  # improvements always pass

    def test_first_matching_rule_governs(self):
        # the samples_per_sec escape hatch outranks a throughput floor
        report = evaluate_gate(
            _payloads(), {"BENCH_serve": copy.deepcopy(SERVE),
                          "BENCH_forward": {"nets": {"mobilenet": {
                              "speedup": 3.0,
                              "samples_per_sec": 100.0}}}})
        assert report.ok  # wall-clock collapse alone must not fail the gate


class TestEvaluateGate:
    def test_identical_payloads_pass(self):
        report = evaluate_gate(_payloads(), _payloads())
        assert report.ok
        assert report.gated
        assert "PASS" in report.table()

    def test_miss_rate_regression_fails(self):
        current = _payloads()
        current["BENCH_serve"]["results"]["serve_1x"]["miss_rate"] = 0.08
        report = evaluate_gate(_payloads(), current)
        assert not report.ok
        keys = [f.key for f in report.violations]
        assert keys == ["BENCH_serve.results.serve_1x.miss_rate"]
        assert "FAIL" in report.table()

    def test_miss_rate_within_2pp_passes(self):
        current = _payloads()
        current["BENCH_serve"]["results"]["serve_1x"]["miss_rate"] = 0.069
        assert evaluate_gate(_payloads(), current).ok

    def test_throughput_collapse_fails(self):
        current = _payloads()
        current["BENCH_serve"]["results"]["serve_1x"]["admitted_rps"] = 700.0
        report = evaluate_gate(_payloads(), current)
        assert [f.key for f in report.violations] == [
            "BENCH_serve.results.serve_1x.admitted_rps"]

    def test_speedup_regression_fails(self):
        current = _payloads()
        current["BENCH_forward"]["nets"]["mobilenet"]["speedup"] = 2.0
        report = evaluate_gate(_payloads(), current)
        assert [f.key for f in report.violations] == [
            "BENCH_forward.nets.mobilenet.speedup"]

    def test_missing_gated_benchmark_fails(self):
        report = evaluate_gate(_payloads(), {"BENCH_forward": FORWARD})
        assert not report.ok
        assert all("missing" in f.violation for f in report.violations)

    def test_new_benchmark_is_informational(self):
        current = _payloads(BENCH_new={"metric": 1.0})
        report = evaluate_gate(_payloads(), current)
        assert report.ok
        assert any(f.key == "BENCH_new.metric" and f.baseline is None
                   for f in report.findings)

    def test_ungated_keys_may_move_freely(self):
        current = _payloads()
        current["BENCH_serve"]["results"]["serve_1x"]["p99_ms"] = 99.0
        assert evaluate_gate(_payloads(), current).ok


class TestRunGate:
    def _write(self, directory, payloads):
        os.makedirs(directory, exist_ok=True)
        for name, payload in payloads.items():
            with open(os.path.join(directory, f"{name}.json"), "w") as fh:
                json.dump(payload, fh)

    def test_directory_pass_and_fail(self, tmp_path, capsys):
        self._write(tmp_path / "base", _payloads())
        self._write(tmp_path / "cur", _payloads())
        assert run_gate(str(tmp_path / "base"), str(tmp_path / "cur")) == 0

        doctored = _payloads()
        doctored["BENCH_serve"]["results"]["serve_1x"]["miss_rate"] = 0.5
        self._write(tmp_path / "bad", doctored)
        assert run_gate(str(tmp_path / "base"), str(tmp_path / "bad")) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_no_baselines_is_a_noop(self, tmp_path):
        assert run_gate(str(tmp_path / "nothing")) == 0

    def test_load_bench_dir_only_picks_bench_json(self, tmp_path):
        self._write(tmp_path, _payloads())
        (tmp_path / "OTHER_file.json").write_text("{}")
        assert sorted(load_bench_dir(str(tmp_path))) == ["BENCH_forward",
                                                         "BENCH_serve"]


class TestBenchGateScript:
    """The CI entry point fails on a synthetic (doctored) regression."""

    def _run(self, baselines, current):
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        return subprocess.run(
            [sys.executable, os.path.join(REPO, "scripts", "bench_gate.py"),
             "--baselines", baselines, "--current", current],
            env=env, capture_output=True, text=True)

    def test_script_passes_then_fails_on_doctored_file(self, tmp_path):
        base = tmp_path / "baselines"
        cur = tmp_path / "current"
        for d in (base, cur):
            os.makedirs(d)
            with open(d / "BENCH_serve.json", "w") as fh:
                json.dump(SERVE, fh)
        ok = self._run(str(base), str(cur))
        assert ok.returncode == 0, ok.stdout + ok.stderr

        doctored = copy.deepcopy(SERVE)
        doctored["results"]["serve_1x"]["admitted_rps"] = 1.0
        with open(cur / "BENCH_serve.json", "w") as fh:
            json.dump(doctored, fh)
        bad = self._run(str(base), str(cur))
        assert bad.returncode == 1
        assert "admitted_rps" in bad.stdout
        assert "FAIL" in bad.stdout


class TestCommittedBaselines:
    """The in-repo baselines exist and gate the real BENCH surface."""

    def test_baselines_cover_every_bench_payload(self):
        baselines = load_bench_dir(os.path.join(REPO, "benchmarks",
                                                "baselines"))
        assert {"BENCH_serve", "BENCH_workload", "BENCH_forward",
                "BENCH_builders"} <= set(baselines)

    def test_baselines_pass_against_themselves(self):
        directory = os.path.join(REPO, "benchmarks", "baselines")
        payloads = load_bench_dir(directory)
        report = evaluate_gate(payloads, payloads)
        assert report.ok
        assert len(report.gated) > 20

    def test_default_rules_gate_builders_accuracy(self):
        payloads = load_bench_dir(os.path.join(REPO, "benchmarks",
                                               "baselines"))
        doctored = copy.deepcopy(payloads)
        nets = doctored["BENCH_builders"]["nets"]
        for per_device in nets.values():
            for result in per_device.values():
                result["mixed"]["accuracy_at_deadline"] *= 0.5
        report = evaluate_gate(payloads, doctored)
        assert not report.ok
        assert all("accuracy_at_deadline" in f.key
                   for f in report.violations)
