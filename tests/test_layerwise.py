"""Tests for the Edgent-style per-layer-type latency estimator."""

import numpy as np
import pytest

from repro.device.latency import network_latency
from repro.estimators import LayerwiseEstimator, layer_type_features

from conftest import make_tiny_net


class TestLayerTypeFeatures:
    def test_feature_vector_shape(self, tiny_net):
        ltype, feats = layer_type_features(tiny_net, "b1_conv")
        assert ltype == "Conv2D"
        assert feats.shape == (5,)
        assert feats[-1] == 1.0  # intercept

    def test_flops_feature_matches_layer(self, tiny_net):
        _, feats = layer_type_features(tiny_net, "b1_conv")
        node = tiny_net.nodes["b1_conv"]
        assert feats[0] == node.layer.flops(tiny_net.in_shapes("b1_conv"))


class TestLayerwiseEstimator:
    @pytest.fixture
    def fitted(self, tiny_device):
        nets = [make_tiny_net(f"n{i}", blocks=b)
                for i, b in enumerate((2, 3, 4))]
        return LayerwiseEstimator().fit_from_device(nets, tiny_device), nets

    def test_unfitted_raises(self, tiny_net):
        with pytest.raises(RuntimeError):
            LayerwiseEstimator().estimate(tiny_net)

    def test_learns_layer_types(self, fitted):
        est, _ = fitted
        assert "Conv2D" in est.layer_types
        assert "BatchNorm" in est.layer_types

    def test_accurate_on_unfused_engine(self, fitted, tiny_device):
        """On the engine it was trained against (no fusion), the per-layer
        model is accurate — Edgent works in its own setting."""
        est, _ = fitted
        probe = make_tiny_net("probe", blocks=5)
        pred = est.estimate(probe)
        truth = network_latency(probe, tiny_device, fused=False).total_ms
        assert pred == pytest.approx(truth, rel=0.1)

    def test_overestimates_fused_engine(self, fitted, tiny_device):
        """On a fusing engine the per-layer-type model systematically
        overestimates (the NetCut paper's argument against it)."""
        est, _ = fitted
        probe = make_tiny_net("probe", blocks=5)
        pred = est.estimate(probe)
        fused = network_latency(probe, tiny_device, fused=True).total_ms
        assert pred > 1.2 * fused

    def test_unknown_layer_type_uses_fallback(self, fitted, tiny_device):
        """A probe network containing a layer type never seen in training
        still gets a finite estimate via the pooled fallback model."""
        est, _ = fitted
        from repro.nn import Dense, Dropout, Flatten, Network

        net = Network("odd", (4, 4, 2))
        net.add("flat", Flatten())
        net.add("drop", Dropout(0.1))
        net.add("fc", Dense(3))
        net.build(0)
        assert np.isfinite(est.estimate(net))
