"""Tests for layer removal: block boundaries, cutpoints, TRN construction."""

import numpy as np
import pytest

from repro.trim import (
    attach_head,
    block_boundaries,
    build_trn,
    enumerate_blockwise,
    enumerate_iterative,
    removed_node_set,
    removed_weighted_layers,
    stem_output,
    trn_node_count,
)



class TestBlockBoundaries:
    def test_tiny_net_blocks(self, tiny_net):
        bounds = block_boundaries(tiny_net)
        assert [b.block_id for b in bounds] == ["b1", "b2", "b3"]
        assert bounds[0].output_node == "b1_relu"
        assert bounds[1].output_node == "b2_add"
        assert bounds[2].output_node == "pool"

    def test_weighted_layer_counts(self, tiny_net):
        bounds = block_boundaries(tiny_net)
        assert all(b.weighted_layers == 1 for b in bounds)

    def test_stem_output(self, tiny_net):
        assert stem_output(tiny_net) == "stem_relu"

    def test_stemless_network_raises(self):
        from repro.nn import Conv2D, Network

        net = Network("nostem", (4, 4, 1))
        net.add("c", Conv2D(2, 3), block_id="b1")
        with pytest.raises(ValueError, match="stem"):
            stem_output(net)


class TestEnumerateBlockwise:
    def test_count_equals_blocks(self, tiny_net):
        assert len(enumerate_blockwise(tiny_net)) == 3

    def test_order_shallow_to_deep(self, tiny_net):
        cuts = enumerate_blockwise(tiny_net)
        assert [c.blocks_removed for c in cuts] == [1, 2, 3]
        assert cuts[0].cut_node == "b2_add"
        assert cuts[-1].cut_node == "stem_relu"

    def test_layers_removed_monotone(self, tiny_net):
        cuts = enumerate_blockwise(tiny_net)
        removed = [c.layers_removed for c in cuts]
        assert removed == sorted(removed)
        assert removed == [1, 2, 3]


class TestEnumerateIterative:
    def test_superset_of_blockwise(self, tiny_net):
        block_nodes = {c.cut_node for c in enumerate_blockwise(tiny_net)}
        iter_nodes = {c.cut_node for c in enumerate_iterative(tiny_net)}
        assert block_nodes <= iter_nodes

    def test_block_boundary_cuts_annotated(self, tiny_net):
        cuts = {c.cut_node: c for c in enumerate_iterative(tiny_net)}
        assert cuts["b2_add"].blocks_removed == 1
        assert cuts["b2_bn"].blocks_removed is None

    def test_many_more_cutpoints(self):
        from repro.zoo import build_network

        net = build_network("inception_v3").build(0)
        assert len(enumerate_iterative(net)) > 5 * len(
            enumerate_blockwise(net))


class TestBuildTRN:
    def test_structure(self, tiny_net):
        trn = build_trn(tiny_net, "b2_add", num_classes=5)
        assert "b3_conv" not in trn.nodes
        assert trn.output_name == "head_probs"
        for node in ["head_gap", "head_fc1", "head_fc2", "head_logits"]:
            assert node in trn.nodes

    def test_output_is_distribution(self, tiny_net, small_images):
        trn = build_trn(tiny_net, "b1_relu", num_classes=5)
        out = trn.forward(small_images)
        assert out.shape == (6, 5)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-5)

    def test_pretrained_features_copied(self, tiny_net, small_images):
        trn = build_trn(tiny_net, "b2_add", num_classes=5)
        _, base_acts = tiny_net.forward(small_images, capture=["b2_add"])
        _, trn_acts = trn.forward(small_images, capture=["b2_add"])
        np.testing.assert_allclose(trn_acts["b2_add"], base_acts["b2_add"],
                                   rtol=1e-5)

    def test_base_untouched_by_trn_training(self, tiny_net, small_images):
        before = tiny_net.forward(small_images)
        trn = build_trn(tiny_net, "b2_add", num_classes=5)
        trn.nodes["b1_conv"].layer.params["w"].value[:] = 0.0
        np.testing.assert_array_equal(tiny_net.forward(small_images), before)

    def test_default_name_scheme(self, tiny_net):
        trn = build_trn(tiny_net, "b1_relu", num_classes=5)
        assert trn.name == f"tiny/{trn_node_count(trn)}"

    def test_custom_name(self, tiny_net):
        trn = build_trn(tiny_net, "b1_relu", 5, name="custom")
        assert trn.name == "custom"

    def test_flat_cut_tensor_gets_no_gap(self, tiny_net):
        trn = build_trn(tiny_net, "gap", num_classes=5)
        assert "head_gap" not in trn.nodes

    def test_head_initialisation_seeded(self, tiny_net, small_images):
        a = build_trn(tiny_net, "b1_relu", 5, rng=3)
        b = build_trn(tiny_net, "b1_relu", 5, rng=3)
        np.testing.assert_array_equal(a.forward(small_images),
                                      b.forward(small_images))


class TestAttachHead:
    def test_rejects_bad_rank(self, tiny_net):
        sub = tiny_net.subgraph("b1_relu")
        sub.add("flat", __import__("repro.nn", fromlist=["Flatten"]).Flatten())
        sub.build(0)
        # Flatten output is rank-1: allowed (dense attaches directly)
        attach_head(sub, 5)


class TestRemovedCounts:
    def test_removed_node_set_partition(self, tiny_net):
        removed = removed_node_set(tiny_net, "b2_add")
        kept = set(tiny_net.nodes) - removed
        assert "b3_conv" in removed
        assert "b2_add" in kept and "input" in kept
        assert "logits" in removed  # old head is removed too

    def test_removed_weighted_layers_excludes_head(self, tiny_net):
        # cutting at b2_add removes only b3_conv among weighted feature layers
        assert removed_weighted_layers(tiny_net, "b2_add") == 1

    def test_zoo_deepest_cut_removes_all_feature_layers(self):
        from repro.zoo import build_network

        net = build_network("mobilenet_v1_0.5").build(0)
        cuts = enumerate_blockwise(net)
        assert cuts[-1].layers_removed == 26  # 13 blocks x 2 layers
