"""Tests for post-training INT8 quantization."""

import numpy as np
import pytest

from repro.device import QuantizedNetwork, calibration_split, quantize_tensor
from repro.nn import Conv2D


class TestQuantizeTensor:
    def test_roundtrip_small_error(self, rng):
        x = rng.normal(size=(100,)).astype(np.float32)
        scale = np.abs(x).max() / 127
        q = quantize_tensor(x, scale)
        assert np.abs(q - x).max() <= scale / 2 + 1e-7

    def test_values_on_grid(self, rng):
        x = rng.normal(size=(50,)).astype(np.float32)
        scale = np.abs(x).max() / 127
        q = quantize_tensor(x, scale)
        ratios = q / scale
        np.testing.assert_allclose(ratios, np.round(ratios), atol=1e-4)

    def test_clipping_at_127(self):
        q = quantize_tensor(np.array([1000.0]), 1.0)
        assert q[0] == 127.0


class TestCalibrationSplit:
    def test_ten_percent(self):
        idx = calibration_split(200, 0.1, rng=0)
        assert len(idx) == 20
        assert len(set(idx.tolist())) == 20

    def test_at_least_one(self):
        assert len(calibration_split(3, 0.1)) == 1


class TestQuantizedNetwork:
    def test_weights_quantized_per_feature(self, tiny_net, small_images):
        qnet = QuantizedNetwork(tiny_net, small_images)
        w = qnet.net.nodes["b1_conv"].layer.params["w"].value
        scales = qnet._weight_scales["b1_conv"]
        assert scales.shape == (w.shape[-1],)  # one scale per output feature
        ratios = w / scales
        np.testing.assert_allclose(ratios, np.round(ratios), atol=1e-3)

    def test_float_network_untouched(self, tiny_net, small_images):
        before = tiny_net.forward(small_images)
        QuantizedNetwork(tiny_net, small_images)
        np.testing.assert_array_equal(tiny_net.forward(small_images), before)

    def test_outputs_close_to_float(self, tiny_net, small_images):
        qnet = QuantizedNetwork(tiny_net, small_images)
        fp = tiny_net.forward(small_images)
        q = qnet.forward(small_images)
        assert q.shape == fp.shape
        # int8 post-training quantization should track fp32 closely
        assert np.abs(q - fp).max() < 0.15

    def test_requires_built_network(self, small_images):
        from repro.nn import Network

        net = Network("x", (8, 8, 3))
        net.add("c", Conv2D(2, 3))
        with pytest.raises(RuntimeError):
            QuantizedNetwork(net, small_images)

    def test_dense_layers_quantized_too(self, tiny_net, small_images):
        qnet = QuantizedNetwork(tiny_net, small_images)
        assert "logits" in qnet._weight_scales
        assert "logits" in qnet._act_scales

    def test_forward_one_matches_batched_row(self, tiny_net, small_images):
        qnet = QuantizedNetwork(tiny_net, small_images)
        one = qnet.forward_one(small_images[0])
        assert one.shape == qnet.forward(small_images)[0].shape
        np.testing.assert_array_equal(one, qnet.forward(small_images[:1])[0])

    def test_forward_one_rejects_batched_input(self, tiny_net, small_images):
        qnet = QuantizedNetwork(tiny_net, small_images)
        with pytest.raises(ValueError, match="forward_one expects"):
            qnet.forward_one(small_images)
