"""Tests for the public gradient-checking utility."""

import numpy as np

from repro.nn import Conv2D, Dense
from repro.nn.gradcheck import check_layer, check_network
from repro.nn.losses import softmax_cross_entropy

from conftest import make_tiny_net


class TestCheckLayer:
    def test_correct_layer_passes(self, rng):
        conv = Conv2D(4, 3)
        conv.build([(6, 6, 3)], np.random.default_rng(0))
        x = rng.normal(size=(2, 6, 6, 3)).astype(np.float32)
        report = check_layer(conv, [x])
        assert report.passed, str(report)
        assert report.checked > 0

    def test_broken_backward_detected(self, rng):
        """A layer with a sabotaged backward must fail the check."""

        class BrokenDense(Dense):
            def backward(self, grad):
                grads = super().backward(grad)
                self.params["w"].grad *= 2.0  # sabotage
                return grads

        layer = BrokenDense(3)
        layer.build([(5,)], np.random.default_rng(0))
        x = rng.normal(size=(4, 5)).astype(np.float32)
        report = check_layer(layer, [x])
        assert not report.passed

    def test_report_str(self, rng):
        dense = Dense(2)
        dense.build([(3,)], np.random.default_rng(0))
        x = rng.normal(size=(2, 3)).astype(np.float32)
        text = str(check_layer(dense, [x]))
        assert "gradcheck" in text and "ok" in text


class TestCheckNetwork:
    def test_tiny_network_passes(self, tiny_net, small_images, soft_labels):
        tiny_net.output_name = "logits"
        report = check_network(tiny_net, small_images,
                               softmax_cross_entropy, soft_labels)
        assert report.passed, str(report)

    def test_restricted_parameter_list(self, tiny_net, small_images,
                                       soft_labels):
        tiny_net.output_name = "logits"
        report = check_network(tiny_net, small_images,
                               softmax_cross_entropy, soft_labels,
                               parameters=["logits.w", "logits.b"])
        assert report.passed
        assert report.checked <= 8

    def test_sabotaged_parameter_detected(self, small_images, soft_labels):
        net = make_tiny_net("sab")
        net.output_name = "logits"
        # corrupt the gradient path by scaling a weight's grad after the
        # fact is impossible from outside; instead check that a frozen
        # layer (grad stays zero) is reported as mismatched
        net.nodes["b1_conv"].layer.frozen = True
        report = check_network(net, small_images, softmax_cross_entropy,
                               soft_labels, parameters=None)
        # frozen layers are excluded from parameters(), so the check still
        # passes — but including them explicitly must fail
        net.nodes["b1_conv"].layer.frozen = False
        net.zero_grad()
        report_all = check_network(net, small_images,
                                   softmax_cross_entropy, soft_labels)
        assert report_all.passed
