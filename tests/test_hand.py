"""Tests for the robotic prosthetic hand application package."""

import numpy as np
import pytest

from repro.hand import (
    DEFAULT_DEADLINE_MS,
    EMG_CHANNELS,
    ControlLoopSpec,
    EMGClassifier,
    emg_features,
    entropy,
    fuse_product,
    fuse_sequence,
    fuse_weighted,
    grasp_by_name,
    joint_targets,
    make_emg_dataset,
    simulate_reach,
    synth_emg_window,
)
from repro.hand.grasps import GRASP_TYPES


class TestGrasps:
    def test_five_grasp_types(self):
        assert len(GRASP_TYPES) == 5
        assert [g.index for g in GRASP_TYPES] == list(range(5))

    def test_lookup(self):
        assert grasp_by_name("palmar_pinch").index == 4
        with pytest.raises(KeyError):
            grasp_by_name("fist")

    def test_joint_targets_mixture(self):
        one_hot = np.zeros(5)
        one_hot[0] = 1.0  # open palm: all joints open
        np.testing.assert_allclose(joint_targets(one_hot), 0.0)
        uniform = np.full(5, 0.2)
        mixed = joint_targets(uniform)
        assert mixed.shape == (5,)
        assert (mixed > 0).all()

    def test_joint_targets_bad_shape(self):
        with pytest.raises(ValueError):
            joint_targets(np.ones(4))


class TestEMG:
    def test_window_shape(self, rng):
        window = synth_emg_window(1, rng, samples=64)
        assert window.signal.shape == (64, EMG_CHANNELS)

    def test_bad_grasp_index(self, rng):
        with pytest.raises(ValueError):
            synth_emg_window(9, rng)

    def test_activation_scales_with_synergy(self, rng):
        low = synth_emg_window(0, rng)   # open palm: low muscle tone
        high = synth_emg_window(1, rng)  # medium wrap: high tone
        assert np.abs(high.signal).mean() > np.abs(low.signal).mean()

    def test_features_shape_and_finiteness(self, rng):
        window = synth_emg_window(2, rng)
        feats = emg_features(window.signal)
        assert feats.shape == (4 * EMG_CHANNELS,)
        assert np.isfinite(feats).all()

    def test_dataset_balanced(self):
        x, y = make_emg_dataset(50, rng=0)
        assert x.shape == (50, 32)
        np.testing.assert_allclose(y.sum(axis=0), 10.0)

    def test_classifier_beats_chance_but_imperfect(self):
        """EMG alone is informative yet unreliable (the paper's premise)."""
        x, y = make_emg_dataset(300, rng=0)
        xt, yt = make_emg_dataset(100, rng=1)
        clf = EMGClassifier(rng=0).fit(x, y, epochs=30)
        pred = clf.predict(xt)
        top1 = (pred.argmax(1) == yt.argmax(1)).mean()
        assert 0.3 < top1 < 0.98
        np.testing.assert_allclose(pred.sum(axis=1), 1.0, rtol=1e-5)


class TestFusion:
    def test_product_sharpens(self, rng):
        a = np.array([0.5, 0.3, 0.2])
        fused = fuse_product(a, a)
        assert fused[0] > a[0]
        assert fused.sum() == pytest.approx(1.0)

    def test_product_identity_with_uniform(self):
        a = np.array([0.6, 0.3, 0.1])
        uniform = np.full(3, 1 / 3)
        np.testing.assert_allclose(fuse_product(a, uniform), a, rtol=1e-9)

    def test_product_requires_input(self):
        with pytest.raises(ValueError):
            fuse_product()

    def test_weighted_mixture(self):
        a = np.array([1.0, 0.0])
        b = np.array([0.0, 1.0])
        fused = fuse_weighted([a, b], [3.0, 1.0])
        np.testing.assert_allclose(fused, [0.75, 0.25])

    def test_weighted_validates(self):
        with pytest.raises(ValueError):
            fuse_weighted([np.ones(2)], [1.0, 2.0])
        with pytest.raises(ValueError):
            fuse_weighted([np.ones(2)], [0.0])

    def test_sequence_fusion_reduces_entropy(self, rng):
        frames = np.abs(rng.normal(size=(5, 4))) + 0.1
        frames /= frames.sum(axis=1, keepdims=True)
        frames[:, 2] += 0.5  # consistent evidence for class 2
        frames /= frames.sum(axis=1, keepdims=True)
        fused = fuse_sequence(frames)
        assert fused.argmax() == 2
        assert entropy(fused) < entropy(frames).mean()

    def test_sequence_discount_favours_recent(self):
        early = np.array([[0.9, 0.1]] * 4)
        late = np.array([[0.1, 0.9]])
        frames = np.concatenate([early, late])
        heavy_discount = fuse_sequence(frames, discount=0.1)
        no_discount = fuse_sequence(frames, discount=1.0)
        assert heavy_discount[1] > no_discount[1]

    def test_sequence_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            fuse_sequence(np.ones(5))


class TestControlLoop:
    def test_default_deadline_is_paper_value(self):
        spec = ControlLoopSpec()
        assert spec.visual_deadline_ms() == pytest.approx(
            DEFAULT_DEADLINE_MS, abs=0.01)

    def test_budget_arithmetic(self):
        spec = ControlLoopSpec()
        total = (spec.preprocess_ms + spec.writeback_ms
                 + spec.emg_processing_ms + spec.fusion_ms
                 + spec.safety_margin_ms + spec.visual_deadline_ms())
        assert total == pytest.approx(spec.frame_period_ms)

    def test_infeasible_loop_raises(self):
        spec = ControlLoopSpec(camera_fps=1000.0)
        with pytest.raises(ValueError):
            spec.visual_deadline_ms()

    def test_frames_available(self):
        spec = ControlLoopSpec()
        assert spec.frames_available() == int(
            (spec.reach_duration_ms - spec.actuation_ms)
            // spec.frame_period_ms)


class TestSimulateReach:
    def _frames(self, rng, peak_class=2, n=6):
        frames = np.full((n, 5), 0.1)
        frames[:, peak_class] = 0.6
        frames += rng.uniform(0, 0.05, size=frames.shape)
        return frames / frames.sum(axis=1, keepdims=True)

    def test_decision_follows_consistent_evidence(self, rng):
        frames = self._frames(rng)
        emg = np.full(5, 0.2)
        truth = np.zeros(5)
        truth[2] = 1.0
        outcome = simulate_reach(frames, emg, truth,
                                 classifier_latency_ms=0.4)
        assert outcome.top_grasp == "power_sphere"
        assert outcome.deadline_met
        assert outcome.decision_quality > 0.7
        assert outcome.joint_command.shape == (5,)

    def test_deadline_violation_flagged(self, rng):
        frames = self._frames(rng)
        outcome = simulate_reach(frames, np.full(5, 0.2), np.eye(5)[2],
                                 classifier_latency_ms=2.5)
        assert not outcome.deadline_met

    def test_emg_can_tip_the_decision(self, rng):
        frames = np.full((5, 5), 0.2)  # uninformative vision
        emg = np.array([0.05, 0.75, 0.1, 0.05, 0.05])
        outcome = simulate_reach(frames, emg, np.eye(5)[1], 0.4)
        assert outcome.top_grasp == "medium_wrap"

    def test_too_short_reach_rejected(self, rng):
        spec = ControlLoopSpec(reach_duration_ms=360.0, actuation_ms=355.0)
        with pytest.raises(ValueError):
            simulate_reach(self._frames(rng), np.full(5, 0.2),
                           np.eye(5)[0], 0.4, spec)
