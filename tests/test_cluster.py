"""Tests for the multi-replica scale-out layer (repro.cluster).

Everything runs on simulated devices over virtual time with fixed seeds,
like the single-node serve tests. The load-bearing property is that the
cluster layer adds routing without changing serving semantics: a
one-replica cluster reproduces a plain Server run bit for bit, and the
conservation law ``completed + dropped == admitted`` holds fleet-wide.
"""

import json

import pytest

from conftest import make_tiny_net
from repro.cluster import (
    Autoscaler,
    AutoscalerConfig,
    DeadlineAwareP2C,
    JoinShortestQueue,
    Replica,
    RoundRobin,
    Router,
    homogeneous_replicas,
    make_policy,
)
from repro.device.spec import DeviceSpec
from repro.faults import FaultInjector, RungFailure
from repro.obs import Tracer
from repro.serve import (
    Request,
    Server,
    ServerConfig,
    TRNLadder,
    poisson_trace,
)
from repro.serve.metrics import Counter, LatencyHistogram, ServerMetrics


def tiny_spec(name="test-device", speed=1.0):
    return DeviceSpec(
        name=name, peak_gflops=10.0 * speed, bandwidth_gbps=1.0 * speed,
        launch_overhead_us=5.0, occupancy_flops=1e4, noise_std=0.005,
        straggler_prob=0.0, event_overhead_us=2.0)


@pytest.fixture(scope="module")
def spec():
    return tiny_spec()


@pytest.fixture(scope="module")
def base():
    return make_tiny_net()


@pytest.fixture(scope="module")
def feasible_rate(base, spec):
    """Requests/s one replica can sustain on its slowest rung, roughly."""
    ladder = TRNLadder.from_base(base, spec, num_classes=5)
    return 1e3 / ladder.rungs[0].estimate_ms(1)


def request(rid, arrival, deadline):
    return Request(rid=rid, arrival_ms=arrival, deadline_ms=deadline)


class StubReplica:
    """Just enough surface for policy unit tests: a name, a load, an
    estimate."""

    def __init__(self, name, load=0, estimate=1.0):
        self.name = name
        self.load = load
        self.draining = False
        self._estimate = estimate

    def estimate_finish_ms(self, now_ms):
        return self._estimate


class TestPolicies:
    def test_round_robin_cycles_in_order(self):
        reps = [StubReplica(n) for n in "abc"]
        policy = RoundRobin()
        picked = [policy.choose(reps, request(i, 0.0, 1.0), 0.0).name
                  for i in range(6)]
        assert picked == ["a", "b", "c", "a", "b", "c"]

    def test_jsq_picks_least_loaded_with_stable_ties(self):
        reps = [StubReplica("a", load=3), StubReplica("b", load=1),
                StubReplica("c", load=1)]
        policy = JoinShortestQueue()
        assert policy.choose(reps, request(0, 0.0, 1.0), 0.0).name == "b"

    def test_empty_candidates_yield_none(self):
        req = request(0, 0.0, 1.0)
        for policy in (RoundRobin(), JoinShortestQueue(),
                       DeadlineAwareP2C(seed=0)):
            assert policy.choose([], req, 0.0) is None

    def test_p2c_prefers_the_earlier_estimate(self):
        fast = StubReplica("fast", estimate=1.0)
        slow = StubReplica("slow", estimate=4.0)
        policy = DeadlineAwareP2C(seed=0)
        # both fit the deadline -> the earlier finish wins
        assert policy.choose([slow, fast], request(0, 0.0, 9.0),
                             0.0) is fast

    def test_p2c_rejects_onward_to_a_fitting_replica(self):
        # whichever pair is sampled, the only estimate that fits the
        # deadline must be committed to — directly if sampled, via the
        # reject-onward pass if not
        reps = [StubReplica("a", estimate=10.0),
                StubReplica("b", estimate=10.0),
                StubReplica("c", estimate=1.0)]
        policy = DeadlineAwareP2C(seed=0)
        for rid in range(32):
            assert policy.choose(reps, request(rid, 0.0, 5.0),
                                 0.0).name == "c"

    def test_p2c_falls_back_to_least_bad_when_every_estimate_misses(self):
        reps = [StubReplica("a", estimate=10.0),
                StubReplica("b", estimate=20.0),
                StubReplica("c", estimate=30.0)]
        policy = DeadlineAwareP2C(seed=0)
        # abs deadline 5 ms: nothing fits, yet nothing is dropped either —
        # the least-bad estimate is returned every time
        for rid in range(32):
            assert policy.choose(reps, request(rid, 0.0, 5.0),
                                 0.0).name == "a"

    def test_make_policy_rejects_unknown_names(self):
        with pytest.raises(KeyError, match="unknown routing policy"):
            make_policy("definitely-not-a-policy")


class TestReplica:
    def test_estimate_grows_with_backlog(self, base, spec):
        ladder = TRNLadder.from_base(base, spec, num_classes=5)
        replica = Replica("r0", ladder, ServerConfig(deadline_ms=5.0,
                                                     execute=False))
        idle = replica.estimate_finish_ms(0.0)
        for rid in range(3 * replica.config.max_batch):
            replica.submit(request(rid, 0.0, 5.0))
        assert replica.estimate_finish_ms(0.0) > idle

    def test_faster_device_estimates_earlier(self, base):
        fast = Replica("fast", TRNLadder.from_base(base, tiny_spec("fast", 4.0),
                                                   num_classes=5),
                       ServerConfig(deadline_ms=5.0, execute=False))
        slow = Replica("slow", TRNLadder.from_base(base, tiny_spec("slow", 1.0),
                                                   num_classes=5),
                       ServerConfig(deadline_ms=5.0, execute=False))
        assert fast.estimate_finish_ms(0.0) < slow.estimate_finish_ms(0.0)

    def test_draining_replica_reads_unhealthy(self, base, spec):
        ladder = TRNLadder.from_base(base, spec, num_classes=5)
        replica = Replica("r0", ladder, ServerConfig(execute=False))
        assert replica.healthy(0.0)
        replica.draining = True
        assert not replica.healthy(0.0)


class TestSingleReplicaEquivalence:
    def test_one_replica_cluster_matches_plain_server(self, base, spec,
                                                      feasible_rate):
        config = ServerConfig(deadline_ms=2.0, execute=False, seed=0)
        trace = poisson_trace(300, 1.5 * feasible_rate, 2.0, rng=0)

        server = Server(TRNLadder.from_base(base, spec, num_classes=5),
                        config)
        expected = server.run_trace(trace)

        replicas = homogeneous_replicas(base, spec, 1, config)
        result = Router(replicas, RoundRobin()).run(trace)

        assert (json.dumps(result.metrics.aggregate().snapshot(),
                           sort_keys=True)
                == json.dumps(expected.metrics.snapshot(), sort_keys=True))
        assert [(r.rid, r.status, r.finish_ms) for r in result.responses] \
            == [(r.rid, r.status, r.finish_ms) for r in expected.responses]


class TestRouterEdgeCases:
    def test_empty_replica_pool_rejects_everything_without_crashing(self):
        trace = [request(i, float(i), 1.0) for i in range(5)]
        result = Router([], RoundRobin()).run(trace)
        assert len(result.responses) == 5
        assert all(r.status == "rejected" and r.reject_reason == "no-replica"
                   for r in result.responses)
        assert result.metrics.counters["arrived"].value == 5
        assert result.metrics.counters["no_replica"].value == 5

    def test_all_breakers_open_drops_at_cluster_level(self, base, spec,
                                                      feasible_rate):
        # every rung hard-fails for the whole run and the breakers never
        # cool down, so once they open the fleet reads unhealthy and the
        # router must drop at cluster level rather than crash
        config = ServerConfig(deadline_ms=2.0, execute=False, seed=0,
                              resilience=True, breaker_cooldown_ms=1e9)
        dead = FaultInjector([RungFailure(start_ms=0.0, duration_ms=1e9)],
                             seed=0)
        trace = poisson_trace(100, feasible_rate, 2.0, rng=0)
        replicas = homogeneous_replicas(base, spec, 1, config,
                                        faults={0: dead})
        result = Router(replicas, make_policy("p2c-deadline", 0)).run(trace)

        assert len(result.responses) == len(trace)
        assert not result.completed
        assert result.metrics.counters["no_replica"].value > 0
        c = result.metrics.aggregate().counters
        assert c["completed"].value + c["dropped"].value == c["admitted"].value

    def test_conservation_and_order_under_overload(self, base, spec,
                                                   feasible_rate):
        config = ServerConfig(deadline_ms=2.0, execute=False, seed=0,
                              queue_capacity=16)
        trace = poisson_trace(400, 6.0 * feasible_rate, 2.0, rng=0)
        replicas = homogeneous_replicas(base, spec, 3, config)
        result = Router(replicas, make_policy("jsq")).run(trace)

        cm = result.metrics.counters
        assert cm["arrived"].value == len(trace)
        assert cm["routed"].value + cm["no_replica"].value == len(trace)
        agg = result.metrics.aggregate().counters
        assert agg["admitted"].value + agg["rejected"].value \
            == cm["routed"].value
        assert agg["completed"].value + agg["dropped"].value \
            == agg["admitted"].value
        # responses come back in trace order, one per request
        assert [r.rid for r in result.responses] == [t.rid for t in trace]

    def test_cluster_spans_carry_replica_and_policy_tags(self, base, spec,
                                                         feasible_rate):
        tracer = Tracer()
        config = ServerConfig(deadline_ms=2.0, execute=False, seed=0)
        trace = poisson_trace(50, feasible_rate, 2.0, rng=0)
        replicas = homogeneous_replicas(base, spec, 2, config, tracer=tracer)
        result = Router(replicas, make_policy("round-robin"),
                        tracer=tracer).run(trace)

        routes = tracer.spans("route")
        assert len(routes) == result.metrics.counters["routed"].value
        assert {s.args["replica"] for s in routes} == {"r0", "r1"}
        assert all(s.args["policy"] == "round-robin" for s in routes)
        # engine-side spans are tagged by the replica that emitted them
        assert {s.args["replica"] for s in tracer.spans("respond")} \
            == {"r0", "r1"}


class ScalerStub:
    """A replica as the autoscaler sees one: counters, load, drain flag."""

    def __init__(self, name, load=0.0):
        self.name = name
        self.load = load
        self.draining = False
        self.metrics = ServerMetrics(1.0)

    def observe(self, completed, missed):
        self.metrics.counters["completed"].increment(completed)
        self.metrics.counters["deadline_miss"].increment(missed)


class TestAutoscaler:
    CFG = dict(min_replicas=1, max_replicas=4, check_interval_ms=10.0,
               up_miss=0.10, up_load=8.0, down_miss=0.02, down_load=1.0,
               cooldown_ms=50.0, down_checks=3)

    def make(self, **overrides):
        return Autoscaler(factory=lambda i: ScalerStub(f"r{i}"),
                          config=AutoscalerConfig(**{**self.CFG,
                                                     **overrides}))

    def test_config_rejects_inverted_hysteresis_band(self):
        with pytest.raises(ValueError, match="down band"):
            AutoscalerConfig(up_miss=0.05, down_miss=0.10)
        with pytest.raises(ValueError, match="min_replicas"):
            AutoscalerConfig(min_replicas=0)

    def test_scales_up_on_miss_pressure(self):
        scaler = self.make()
        fleet = [ScalerStub("r0")]
        fleet[0].observe(completed=20, missed=10)
        assert scaler.evaluate(10.0, fleet) == ("up", None)

    def test_cooldown_blocks_back_to_back_actions(self):
        scaler = self.make()
        fleet = [ScalerStub("r0")]
        fleet[0].observe(20, 10)
        assert scaler.evaluate(10.0, fleet) == ("up", None)
        fleet[0].observe(20, 10)          # still melting down, but...
        assert scaler.evaluate(20.0, fleet) is None   # ...inside cooldown
        fleet[0].observe(20, 10)
        assert scaler.evaluate(70.0, fleet) == ("up", None)

    def test_interval_gates_evaluations(self):
        scaler = self.make()
        fleet = [ScalerStub("r0")]
        fleet[0].observe(20, 10)
        assert scaler.evaluate(1.0, fleet) is None    # too soon to look

    def test_band_between_thresholds_never_flaps(self):
        # signals sitting inside the hysteresis band (above down, below
        # up) must produce no action no matter how long they persist
        scaler = self.make(cooldown_ms=0.0)
        fleet = [ScalerStub("r0", load=4.0), ScalerStub("r1", load=4.0)]
        for step in range(1, 20):
            fleet[0].observe(completed=20, missed=1)   # 5% miss: mid-band
            assert scaler.evaluate(10.0 * step, fleet) is None

    def test_scale_down_needs_consecutive_calm_checks(self):
        scaler = self.make(cooldown_ms=0.0)
        fleet = [ScalerStub("r0", load=0.5), ScalerStub("r1", load=0.0)]
        t = [0.0]

        def check(calm):
            t[0] += 10.0
            if calm:
                fleet[0].observe(completed=20, missed=0)
            else:
                fleet[0].observe(completed=20, missed=1)   # mid-band
            return scaler.evaluate(t[0], fleet)

        assert check(True) is None        # calm x1
        assert check(True) is None        # calm x2
        assert check(False) is None       # busy: streak resets
        assert check(True) is None
        assert check(True) is None
        decision = check(True)            # calm x3 in a row
        assert decision is not None and decision[0] == "down"
        # the least-loaded replica is the drain victim
        assert decision[1].name == "r1"

    def test_scale_down_respects_min_replicas(self):
        scaler = self.make(cooldown_ms=0.0, down_checks=1)
        fleet = [ScalerStub("r0", load=0.0)]
        for step in range(1, 6):
            fleet[0].observe(completed=20, missed=0)
            assert scaler.evaluate(10.0 * step, fleet) is None

    def test_scale_up_respects_max_replicas(self):
        scaler = self.make(cooldown_ms=0.0, max_replicas=2)
        fleet = [ScalerStub("r0"), ScalerStub("r1")]
        fleet[0].observe(20, 10)
        assert scaler.evaluate(10.0, fleet) is None

    def test_router_applies_scale_up_under_overload(self, base, spec,
                                                    feasible_rate):
        config = ServerConfig(deadline_ms=2.0, execute=False, seed=0,
                              queue_capacity=16)

        def factory(i):
            ladder = TRNLadder.from_base(base, spec, num_classes=5)
            return Replica(f"r{i}", ladder, config)

        scaler = Autoscaler(factory, AutoscalerConfig(
            max_replicas=3, check_interval_ms=1.0, cooldown_ms=2.0,
            up_load=4.0))
        trace = poisson_trace(400, 6.0 * feasible_rate, 2.0, rng=0)
        replicas = homogeneous_replicas(base, spec, 1, config)
        result = Router(replicas, make_policy("jsq"),
                        autoscaler=scaler).run(trace)

        snap = result.metrics.snapshot()
        assert snap["cluster"]["counters"]["scale_ups"] >= 1
        assert len(snap["cluster"]["replicas"]) > 1
        # the new capacity actually took traffic
        grown = [n for n in snap["cluster"]["per_replica_routed"]
                 if n != "r0"]
        assert grown and all(
            snap["cluster"]["per_replica_routed"][n] > 0 for n in grown)
        # conservation still holds with mid-run topology changes
        agg = result.metrics.aggregate().counters
        assert agg["completed"].value + agg["dropped"].value \
            == agg["admitted"].value


class TestClusterMetrics:
    def test_histogram_merge_requires_identical_binning(self):
        a = LatencyHistogram(lo_ms=0.01, hi_ms=10.0)
        b = LatencyHistogram(lo_ms=0.01, hi_ms=20.0)
        with pytest.raises(ValueError, match="different bins"):
            a.merge(b)

    def test_histogram_merge_is_bin_exact(self):
        a = LatencyHistogram()
        b = LatencyHistogram()
        both = LatencyHistogram()
        for i, v in enumerate((0.1, 0.5, 1.0, 2.0, 4.0, 8.0)):
            (a if i % 2 else b).observe(v)
            both.observe(v)
        a.merge(b)
        assert a.count == both.count
        for q in (0.5, 0.9, 0.99):
            assert a.quantile(q) == both.quantile(q)

    def test_snapshot_nests_cluster_aggregate_and_replicas(self, base, spec,
                                                           feasible_rate):
        config = ServerConfig(deadline_ms=2.0, execute=False, seed=0)
        trace = poisson_trace(60, feasible_rate, 2.0, rng=0)
        replicas = homogeneous_replicas(base, spec, 2, config)
        result = Router(replicas, make_policy("round-robin")).run(trace)

        snap = result.metrics.snapshot()
        assert set(snap) == {"cluster", "aggregate", "replicas"}
        assert set(snap["replicas"]) == {"r0", "r1"}
        total = sum(s["counters"]["completed"]
                    for s in snap["replicas"].values())
        assert snap["aggregate"]["counters"]["completed"] == total
        # snapshots are deep copies: mutating one cannot corrupt the live
        # metrics
        snap["cluster"]["counters"]["arrived"] = -1
        assert result.metrics.snapshot()["cluster"]["counters"]["arrived"] \
            == len(trace)

    def test_report_is_printable(self, base, spec, feasible_rate):
        config = ServerConfig(deadline_ms=2.0, execute=False, seed=0)
        trace = poisson_trace(40, feasible_rate, 2.0, rng=0)
        replicas = homogeneous_replicas(base, spec, 2, config)
        result = Router(replicas, make_policy("jsq")).run(trace)
        report = result.metrics.report()
        assert "cluster: 2 replicas" in report
        assert "r0" in report and "r1" in report


class TestCounterHelpers:
    def test_counter_increment_by_value(self):
        c = Counter("n")
        c.increment()
        c.increment(4)
        assert c.value == 5
