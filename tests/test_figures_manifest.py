"""Tests tying the experiment manifest to the actual benchmark files."""

import os

import pytest

from repro.figures import EXPERIMENTS, experiment

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestManifest:
    def test_lookup(self):
        assert experiment("fig07").paper_ref == "Figure 7"
        with pytest.raises(KeyError):
            experiment("fig99")

    def test_ids_unique(self):
        ids = [e.id for e in EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_every_paper_figure_covered(self):
        """Figures 1 and 4-10 of the paper plus §III-B4 and §IV-B2."""
        refs = {e.paper_ref for e in EXPERIMENTS}
        for needed in ("Figure 1", "Figure 4", "Figure 5", "Figure 6",
                       "Figure 7", "Figure 8", "Figure 9",
                       "Figure 10 / Algorithm 1", "Section III-B4",
                       "Section IV-B2"):
            assert needed in refs, needed

    @pytest.mark.parametrize("exp", EXPERIMENTS, ids=lambda e: e.id)
    def test_benchmark_file_exists(self, exp):
        assert os.path.exists(os.path.join(REPO_ROOT, exp.benchmark)), \
            exp.benchmark

    @pytest.mark.parametrize("exp", EXPERIMENTS, ids=lambda e: e.id)
    def test_modules_importable(self, exp):
        import importlib

        for module in exp.modules:
            importlib.import_module(module)

    def test_cli_figures_command(self, capsys):
        from repro.cli import main

        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "fig07" in out and "Figure 10" in out
