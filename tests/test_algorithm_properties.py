"""Property-based tests of Algorithm 1's selection invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netcut import run_netcut
from repro.trim import build_trn

from conftest import make_tiny_net


class ScriptedEstimator:
    """Estimator driven by an arbitrary decreasing latency schedule."""

    name = "scripted"

    def __init__(self, latencies):
        # latencies[0] = original network, latencies[k] = k blocks removed
        self.latencies = list(latencies)

    def estimate(self, base, cutpoint):
        if cutpoint is None:
            return self.latencies[0]
        return self.latencies[cutpoint.blocks_removed]


def scripted_retrain(base, cutpoint):
    cut_node = cutpoint.cut_node if cutpoint else "pool"
    return build_trn(base, cut_node, 5), 0.9 - 0.05 * (
        cutpoint.blocks_removed if cutpoint else 0)


@st.composite
def decreasing_schedules(draw):
    """A strictly decreasing latency schedule for a 3-block network."""
    start = draw(st.floats(1.0, 10.0))
    drops = [draw(st.floats(0.05, 2.0)) for _ in range(3)]
    schedule = [start]
    for d in drops:
        schedule.append(schedule[-1] - d)
    return schedule


class TestAlgorithmMinimality:
    @given(schedule=decreasing_schedules(),
           deadline=st.floats(0.1, 12.0))
    @settings(max_examples=40, deadline=None)
    def test_selects_minimal_feasible_cut(self, schedule, deadline):
        """Algorithm 1 picks the SHALLOWEST cut whose estimate meets the
        deadline — never a deeper one (minimality), never an infeasible
        one (soundness w.r.t. the estimate)."""
        net = make_tiny_net("prop", blocks=3)
        result = run_netcut([net], deadline,
                            ScriptedEstimator(schedule), scripted_retrain)
        cand = result.candidates[0]
        feasible_ks = [k for k, ms in enumerate(schedule) if ms <= deadline]
        if not feasible_ks:
            assert not cand.feasible
            return
        assert cand.feasible
        assert cand.blocks_removed == min(feasible_ks)
        assert cand.estimated_latency_ms <= deadline

    @given(schedule=decreasing_schedules())
    @settings(max_examples=20, deadline=None)
    def test_looser_deadline_never_cuts_deeper(self, schedule):
        """Monotonicity: relaxing the deadline never removes more blocks."""
        net = make_tiny_net("mono", blocks=3)
        tight = run_netcut([net], schedule[-1],
                           ScriptedEstimator(schedule), scripted_retrain)
        loose = run_netcut([net], schedule[0],
                           ScriptedEstimator(schedule), scripted_retrain)
        assert (loose.candidates[0].blocks_removed
                <= tight.candidates[0].blocks_removed)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_best_is_argmax_accuracy(self, seed):
        """The winner is exactly the most accurate feasible candidate."""
        rng = np.random.default_rng(seed)
        nets = [make_tiny_net(f"n{i}", blocks=2) for i in range(3)]
        accs = {net.name: float(rng.uniform(0.3, 0.9)) for net in nets}

        def retrain(base, cutpoint):
            cut_node = cutpoint.cut_node if cutpoint else "pool"
            return build_trn(base, cut_node, 5), accs[base.name]

        result = run_netcut(nets, 5.0, ScriptedEstimator([6.0, 4.0, 3.0]),
                            retrain)
        assert result.best.accuracy == pytest.approx(max(accs.values()))

    @given(schedule=decreasing_schedules())
    @settings(max_examples=15, deadline=None)
    def test_estimator_called_no_deeper_than_needed(self, schedule):
        """Algorithm 1 probes cutpoints lazily: it never evaluates cuts
        deeper than the first feasible one."""
        calls = []

        class Recording(ScriptedEstimator):
            def estimate(self, base, cutpoint):
                calls.append(cutpoint.blocks_removed if cutpoint else 0)
                return super().estimate(base, cutpoint)

        net = make_tiny_net("lazy", blocks=3)
        deadline = schedule[2] + 1e-9  # 2 cuts needed
        run_netcut([net], deadline, Recording(schedule), scripted_retrain)
        assert max(calls) <= 2
