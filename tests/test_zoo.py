"""Tests for the model zoo: structure, counts, determinism."""

import numpy as np
import pytest

from repro.trim import enumerate_blockwise
from repro.zoo import (
    NETWORKS,
    build_network,
    network_spec,
    scale_channels,
)

#: Expected weighted-layer counts (conv + dense), mirroring the originals.
EXPECTED_LAYERS = {
    "mobilenet_v1_0.25": 28,
    "mobilenet_v1_0.5": 28,
    "mobilenet_v2_1.0": 53,
    "mobilenet_v2_1.4": 53,
    "inception_v3": 95,
    "resnet50": 54,       # 50 + 4 projection shortcuts
    "densenet121": 121,
}

#: Expected removable feature blocks per network.
EXPECTED_BLOCKS = {
    "mobilenet_v1_0.25": 13,
    "mobilenet_v1_0.5": 13,
    "mobilenet_v2_1.0": 17,
    "mobilenet_v2_1.4": 17,
    "inception_v3": 11,
    "resnet50": 16,
    "densenet121": 61,
}


@pytest.fixture(scope="module")
def built_networks():
    return {name: build_network(name).build(0) for name in NETWORKS}


class TestRegistry:
    def test_seven_networks(self):
        assert len(NETWORKS) == 7

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown network"):
            network_spec("vgg16")

    def test_spec_metadata(self):
        spec = network_spec("mobilenet_v1_0.5")
        assert spec.family == "mobilenet_v1"
        assert spec.alpha == 0.5

    def test_scale_channels_clamps(self):
        assert scale_channels(1, alpha=0.25) == 3
        assert scale_channels(1024, alpha=1.0) == 1024 // 4


class TestStructure:
    @pytest.mark.parametrize("name", NETWORKS)
    def test_layer_counts_match_originals(self, built_networks, name):
        assert built_networks[name].layer_count() == EXPECTED_LAYERS[name]

    @pytest.mark.parametrize("name", NETWORKS)
    def test_block_counts(self, built_networks, name):
        assert len(built_networks[name].block_ids()) == EXPECTED_BLOCKS[name]

    def test_total_trn_candidates_is_148(self, built_networks):
        """The paper's blockwise search space: 148 TRNs over 7 networks."""
        total = sum(len(enumerate_blockwise(net))
                    for net in built_networks.values())
        assert total == 148

    @pytest.mark.parametrize("name", NETWORKS)
    def test_forward_is_distribution(self, built_networks, name, rng):
        x = rng.normal(size=(2, 32, 32, 3)).astype(np.float32)
        out = built_networks[name].forward(x)
        assert out.shape == (2, 20)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-4)

    def test_width_multiplier_orders_params(self, built_networks):
        assert (built_networks["mobilenet_v1_0.25"].total_params()
                < built_networks["mobilenet_v1_0.5"].total_params())
        assert (built_networks["mobilenet_v2_1.0"].total_params()
                < built_networks["mobilenet_v2_1.4"].total_params())

    def test_flops_orderings(self, built_networks):
        """Inception is the heaviest network, MobileNetV1(0.25) the lightest."""
        flops = {n: net.total_flops() for n, net in built_networks.items()}
        assert max(flops, key=flops.get) == "inception_v3"
        assert min(flops, key=flops.get) == "mobilenet_v1_0.25"

    @pytest.mark.parametrize("name", NETWORKS)
    def test_roles_partition(self, built_networks, name):
        net = built_networks[name]
        roles = {node.role for node in net.nodes.values()}
        assert roles == {"stem", "feature", "head"}

    @pytest.mark.parametrize("name", NETWORKS)
    def test_feature_nodes_all_have_block_ids(self, built_networks, name):
        net = built_networks[name]
        for node in net.nodes.values():
            if node.role == "feature":
                assert node.block_id is not None, node.name


class TestDeterminism:
    def test_same_seed_same_weights(self, rng):
        a = build_network("resnet50").build(7)
        b = build_network("resnet50").build(7)
        x = rng.normal(size=(1, 32, 32, 3)).astype(np.float32)
        np.testing.assert_array_equal(a.forward(x), b.forward(x))

    def test_different_seed_different_weights(self, rng):
        a = build_network("mobilenet_v1_0.5").build(1)
        b = build_network("mobilenet_v1_0.5").build(2)
        x = rng.normal(size=(1, 32, 32, 3)).astype(np.float32)
        assert not np.allclose(a.forward(x), b.forward(x))


class TestResolutionFlexibility:
    def test_custom_input_shape(self, rng):
        net = build_network("mobilenet_v1_0.5", input_shape=(64, 64, 3))
        net.build(0)
        x = rng.normal(size=(1, 64, 64, 3)).astype(np.float32)
        assert net.forward(x).shape == (1, 20)

    def test_custom_class_count(self, rng):
        net = build_network("resnet50", num_classes=7).build(0)
        x = rng.normal(size=(1, 32, 32, 3)).astype(np.float32)
        assert net.forward(x).shape == (1, 7)
