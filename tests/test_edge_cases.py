"""Edge-case and failure-injection tests across the stack."""

import numpy as np
import pytest

from repro.data import Dataset, make_hands_dataset
from repro.device import DeviceSpec, measure_latency, network_latency
from repro.estimators import SVR, LinearRegression
from repro.nn import Dense, Network
from repro.trim import build_trn, enumerate_blockwise

from conftest import make_tiny_net


class TestDegenerateInputs:
    def test_single_example_batch(self, tiny_net):
        x = np.zeros((1, 8, 8, 3), dtype=np.float32)
        assert tiny_net.forward(x).shape == (1, 5)

    def test_single_example_training_step(self, tiny_net):
        """Batch-norm with batch size 1 must not produce NaNs."""
        from repro.nn.losses import softmax_cross_entropy

        x = np.random.default_rng(0).normal(size=(1, 8, 8, 3)).astype(
            np.float32)
        y = np.array([[0.2, 0.2, 0.2, 0.2, 0.2]], dtype=np.float32)
        tiny_net.output_name = "logits"
        tiny_net.zero_grad()
        out, loss = tiny_net.forward_backward(
            x, loss_fn=softmax_cross_entropy, y=y, training=True)
        assert np.isfinite(out).all() and np.isfinite(loss)

    def test_constant_input_images(self, tiny_net):
        x = np.full((4, 8, 8, 3), 0.5, dtype=np.float32)
        out = tiny_net.forward(x)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-4)

    def test_extreme_magnitude_inputs(self, tiny_net):
        x = np.full((2, 8, 8, 3), 1e4, dtype=np.float32)
        out = tiny_net.forward(x)
        assert np.isfinite(out).all()

    def test_dataset_split_extremes(self):
        data = make_hands_dataset(10, seed=0)
        train, test = data.split(1.0, rng=0)
        assert len(train) == 10 and len(test) == 0

    def test_empty_dataset_batches(self):
        empty = Dataset(np.zeros((0, 4, 4, 3), dtype=np.float32),
                        np.zeros((0, 5), dtype=np.float32), ["a"] * 5)
        assert list(empty.batches(4)) == []


class TestDeviceEdgeCases:
    def test_zero_noise_measurement_equals_model(self, tiny_net):
        spec = DeviceSpec("exact", 10, 1, 5, 1e4, noise_std=0.0,
                          straggler_prob=0.0, warmup_factor=0.0)
        measured = measure_latency(tiny_net, spec, rng=0).mean_ms
        model = network_latency(tiny_net, spec).total_ms
        assert measured == pytest.approx(model, rel=1e-12)

    def test_huge_noise_still_positive(self, tiny_net):
        spec = DeviceSpec("noisy", 10, 1, 5, 1e4, noise_std=0.5)
        result = measure_latency(tiny_net, spec, rng=1)
        assert result.mean_ms > 0

    def test_single_run_measurement(self, tiny_net, tiny_device):
        result = measure_latency(tiny_net, tiny_device, warmup=0, runs=1)
        assert result.runs == 1
        assert result.std_ms == 0.0

    def test_identity_network_latency(self):
        """A network with only a dense head still has finite latency."""
        net = Network("min", (4,))
        net.add("fc", Dense(2))
        net.build(0)
        spec = DeviceSpec("d", 10, 1, 5, 1e4)
        assert network_latency(net, spec).total_ms > 0


class TestEstimatorEdgeCases:
    def test_svr_single_feature(self):
        x = np.linspace(0, 1, 15)[:, None]
        y = 2.0 + x[:, 0]
        model = SVR(c=100, gamma=1.0, epsilon=1e-4).fit(x, y)
        assert np.isfinite(model.predict(x)).all()

    def test_svr_duplicate_rows(self):
        x = np.ones((10, 2))
        y = np.full(10, 3.0)
        model = SVR(c=10, gamma=0.1).fit(x, y)
        np.testing.assert_allclose(model.predict(x), 3.0, rtol=0.05)

    def test_svr_constant_feature_column(self):
        rng = np.random.default_rng(0)
        x = np.column_stack([rng.random(20), np.full(20, 7.0)])
        y = 1.0 + x[:, 0]
        model = SVR(c=100, gamma=0.5, epsilon=1e-4).fit(x, y)
        assert np.isfinite(model.predict(x)).all()

    def test_linear_regression_underdetermined(self):
        x = np.random.default_rng(0).random((3, 5))
        y = np.array([1.0, 2.0, 3.0])
        model = LinearRegression().fit(x, y)
        assert np.isfinite(model.predict(x)).all()

    def test_svr_two_points(self):
        x = np.array([[0.0], [1.0]])
        y = np.array([1.0, 2.0])
        model = SVR(c=100, gamma=1.0, epsilon=1e-5).fit(x, y)
        pred = model.predict(x)
        np.testing.assert_allclose(pred, y, atol=0.2)


class TestTrimEdgeCases:
    def test_single_block_network(self):
        net = make_tiny_net("one", blocks=1)
        cuts = enumerate_blockwise(net)
        assert len(cuts) == 1
        trn = build_trn(net, cuts[0].cut_node, 5)
        x = np.zeros((1, 8, 8, 3), dtype=np.float32)
        assert trn.forward(x).shape == (1, 5)

    def test_trn_of_trn(self, tiny_net):
        """Trimming an already-trimmed network works (nested removal)."""
        trn = build_trn(tiny_net, "b2_add", 5)
        cuts = enumerate_blockwise(trn)
        assert cuts  # the TRN has feature blocks of its own
        trn2 = build_trn(trn, cuts[0].cut_node, 5)
        x = np.zeros((1, 8, 8, 3), dtype=np.float32)
        assert trn2.forward(x).shape == (1, 5)

    def test_head_hidden_sizes_configurable(self, tiny_net):
        trn = build_trn(tiny_net, "b1_relu", 5, hidden=(8, 4))
        assert trn.nodes["head_fc1"].layer.units == 8
        assert trn.nodes["head_fc2"].layer.units == 4


class TestWorkbenchValidation:
    def test_unknown_network_in_config_fails_fast(self, tmp_path):
        from repro.experiments import ExperimentConfig, Workbench

        wb = Workbench(ExperimentConfig(networks=("vgg16",)),
                       cache_dir=str(tmp_path))
        with pytest.raises(KeyError):
            wb.bases()
