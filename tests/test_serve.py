"""Tests for the deadline-aware serving stack (repro.serve).

Everything runs on the simulated device over virtual time with fixed
seeds — no wall-clock dependence anywhere, so schedules, transitions and
metrics are bit-for-bit reproducible.
"""

import numpy as np
import pytest

from conftest import make_tiny_net
from repro.netcut.deploy import (
    DeploymentArtifact,
    load_artifact,
    save_artifact,
)
from repro.serve import (
    COMPLETED,
    REJECTED,
    EDFQueue,
    HysteresisController,
    MicroBatcher,
    Request,
    Server,
    ServerConfig,
    TRNLadder,
    offered_load,
    poisson_trace,
    uniform_trace,
)


@pytest.fixture(scope="module")
def ladder(tiny_device_module):
    return TRNLadder.from_base(make_tiny_net(), tiny_device_module,
                               num_classes=5)


@pytest.fixture(scope="module")
def tiny_device_module():
    from repro.device.spec import DeviceSpec

    return DeviceSpec(
        name="test-device", peak_gflops=10.0, bandwidth_gbps=1.0,
        launch_overhead_us=5.0, occupancy_flops=1e4, noise_std=0.005,
        straggler_prob=0.0, event_overhead_us=2.0)


def request(rid, arrival, deadline, x=None):
    return Request(rid=rid, arrival_ms=arrival, deadline_ms=deadline, x=x)


class TestEDFQueue:
    def test_pops_in_absolute_deadline_order(self):
        q = EDFQueue(capacity=8)
        # arrival + relative deadline decides, not either one alone
        reqs = [request(0, 0.0, 9.0),    # abs 9
                request(1, 5.0, 1.0),    # abs 6
                request(2, 2.0, 2.0),    # abs 4
                request(3, 1.0, 8.0)]    # abs 9, arrived later than rid 0
        for r in reqs:
            assert q.push(r)
        assert [q.pop().rid for _ in range(4)] == [2, 1, 0, 3]

    def test_fifo_tiebreak_is_deterministic(self):
        q = EDFQueue(capacity=4)
        for rid in (7, 3, 5):
            q.push(request(rid, 0.0, 1.0))
        assert [q.pop().rid for _ in range(3)] == [7, 3, 5]

    def test_bounded_capacity(self):
        q = EDFQueue(capacity=2)
        assert q.push(request(0, 0.0, 1.0))
        assert q.push(request(1, 0.0, 1.0))
        assert q.full
        assert not q.push(request(2, 0.0, 1.0))
        assert len(q) == 2

    def test_peek_does_not_remove(self):
        q = EDFQueue(capacity=2)
        q.push(request(0, 0.0, 1.0))
        assert q.peek().rid == 0
        assert len(q) == 1


class TestMicroBatcher:
    def test_batches_up_to_cap_with_loose_deadlines(self, ladder):
        rung = ladder.rungs[0]
        q = EDFQueue(capacity=16)
        for i in range(10):
            q.push(request(i, 0.0, 100.0))
        batch = MicroBatcher(max_batch=4).form(q, now_ms=0.0, rung=rung)
        assert len(batch) == 4
        assert len(q) == 6

    def test_tight_deadlines_shrink_the_batch(self, ladder):
        rung = ladder.rungs[0]
        est1, est2 = rung.estimate_ms(1), rung.estimate_ms(2)
        q = EDFQueue(capacity=16)
        # the head fits alone but a 2-batch would finish past its deadline
        q.push(request(0, 0.0, (est1 + est2) / 2))
        q.push(request(1, 0.0, 100.0))
        batch = MicroBatcher(max_batch=4).form(q, now_ms=0.0, rung=rung)
        assert [r.rid for r in batch] == [0]
        assert len(q) == 1

    def test_slack_margin_is_respected(self, ladder):
        rung = ladder.rungs[0]
        est2 = rung.estimate_ms(2)
        q = EDFQueue(capacity=16)
        q.push(request(0, 0.0, est2 + 0.001))
        q.push(request(1, 0.0, est2 + 0.001))
        assert len(MicroBatcher(max_batch=4).form(q, 0.0, rung)) == 2
        q.push(request(2, 0.0, est2 + 0.001))
        q.push(request(3, 0.0, est2 + 0.001))
        # a safety margin larger than the remaining slack forbids pairing
        batcher = MicroBatcher(max_batch=4, slack_margin_ms=0.01)
        assert len(batcher.form(q, 0.0, rung)) == 1

    def test_head_always_runs_even_when_late(self, ladder):
        rung = ladder.rungs[0]
        q = EDFQueue(capacity=4)
        q.push(request(0, 0.0, 1e-6))     # hopeless deadline
        batch = MicroBatcher(max_batch=4).form(q, now_ms=5.0, rung=rung)
        assert [r.rid for r in batch] == [0]

    def test_batched_estimate_is_sublinear(self, ladder):
        """The capacity argument for micro-batching on this device."""
        rung = ladder.rungs[0]
        assert rung.estimate_ms(4) < 4 * rung.estimate_ms(1)
        assert rung.estimate_ms(4) > rung.estimate_ms(1)


class TestLadder:
    def test_rungs_compile_at_load(self, ladder):
        # serving rungs are frozen inference networks: every rung's network
        # carries a compiled plan so forwards take the fused schedule
        for rung in ladder.rungs:
            assert rung.network.compiled

    def test_rung_forward_one(self, ladder):
        rung = ladder.rungs[0]
        x = np.zeros(rung.network.input_shape, dtype=np.float32)
        out = rung.forward_one(x)
        assert out.shape == (5,)
        np.testing.assert_allclose(out, rung.forward([x])[0],
                                   rtol=1e-4, atol=1e-5)

    def test_sorted_slowest_first(self, ladder):
        ests = [r.estimate_ms(1) for r in ladder.rungs]
        assert ests == sorted(ests, reverse=True)
        assert len(ladder) == 3     # one rung per feature block of tiny net

    def test_cursor_moves_and_clamps(self, ladder):
        ladder.reset(0)
        assert ladder.current is ladder.rungs[0]
        assert not ladder.upgrade()
        for _ in range(len(ladder) - 1):
            assert ladder.degrade()
        assert ladder.current is ladder.fastest
        assert not ladder.degrade()
        assert ladder.upgrade()
        ladder.reset(0)

    def test_from_artifacts_round_trip(self, tiny_device_module, tmp_path):
        net = make_tiny_net("served")
        art = DeploymentArtifact(
            network=net, trn_name="served-cut1", base_name="served",
            measured_latency_ms=0.05, accuracy=0.91, deadline_ms=0.9)
        path = str(tmp_path / "artifact.npz")
        save_artifact(art, path)
        assert art.path == path

        loaded = load_artifact(path)
        assert loaded.trn_name == "served-cut1"
        assert loaded.base_name == "served"
        assert loaded.accuracy == pytest.approx(0.91)
        assert loaded.measured_latency_ms == pytest.approx(0.05)
        assert loaded.deadline_ms == pytest.approx(0.9)
        x = np.random.default_rng(0).normal(size=(2, 8, 8, 3)).astype(
            np.float32)
        np.testing.assert_allclose(loaded.network.forward(x),
                                   net.forward(x), rtol=1e-5, atol=1e-6)

        lad = TRNLadder.from_artifacts([loaded], tiny_device_module)
        assert lad.current.name == "served-cut1"
        assert lad.current.accuracy == pytest.approx(0.91)

    def test_max_rungs_keeps_extremes(self, tiny_device_module):
        full = TRNLadder.from_base(make_tiny_net(blocks=5),
                                   tiny_device_module, num_classes=5)
        capped = TRNLadder.from_base(make_tiny_net(blocks=5),
                                     tiny_device_module, num_classes=5,
                                     max_rungs=3)
        assert len(capped) == 3
        assert capped.rungs[0].estimate_ms(1) == pytest.approx(
            full.rungs[0].estimate_ms(1))
        assert capped.fastest.estimate_ms(1) == pytest.approx(
            full.fastest.estimate_ms(1))


class TestLadderRecalibration:
    @pytest.fixture
    def fresh(self, tiny_device_module):
        return TRNLadder.from_base(make_tiny_net(blocks=4),
                                   tiny_device_module, num_classes=5)

    def test_recalibrate_scales_estimate_not_samples(self, fresh):
        """The planner's belief moves; the device's behaviour must not."""
        rung = fresh.rungs[0]
        base = rung.sampler.base_ms(1)
        assert rung.estimate_ms(1) == pytest.approx(base)
        previous = rung.recalibrate(2.0)
        assert previous == 1.0
        assert rung.estimate_ms(1) == pytest.approx(2.0 * base)
        # ground truth unchanged: measured service times still derive
        # from the un-scaled device model
        assert rung.sampler.base_ms(1) == pytest.approx(base)
        assert rung.estimate_table()[1] == pytest.approx(2.0 * base)
        rung.recalibrate(1.0)

    def test_recalibrate_rejects_degenerate_scales(self, fresh):
        rung = fresh.rungs[0]
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError):
                rung.recalibrate(bad)
        assert rung.estimate_scale == 1.0

    def test_resort_preserves_serving_rung_by_identity(self, fresh):
        """Regression: the cursor used to keep its *index* across a
        re-sort, silently swapping which network serves traffic."""
        fresh.reset(1)
        serving = fresh.current
        # recalibrate the serving rung to be the slowest of all: after the
        # re-sort it sits at index 0, not at the old cursor index 1
        serving.recalibrate(
            2.0 * fresh.rungs[0].estimate_ms(1) / serving.sampler.base_ms(1))
        fresh.resort()
        assert fresh.current is serving
        assert fresh.current_index == 0
        ests = [r.estimate_ms(1) for r in fresh.rungs]
        assert ests == sorted(ests, reverse=True)

    def test_select_by_identity(self, fresh):
        target = fresh.rungs[-1]
        fresh.select(target)
        assert fresh.current is target
        with pytest.raises(ValueError):
            fresh.select(TRNLadder.from_base(
                make_tiny_net(blocks=2), fresh.rungs[0].spec,
                num_classes=5).rungs[0])


class TestHysteresisController:
    def test_degrades_on_high_p99(self):
        ctl = HysteresisController(deadline_ms=1.0, window=16,
                                   min_observations=8, cooldown=8)
        decisions = [ctl.observe(2.0) for _ in range(10)]
        assert "degrade" in decisions

    def test_cooldown_blocks_early_decisions(self):
        ctl = HysteresisController(deadline_ms=1.0, window=16,
                                   min_observations=4, cooldown=10)
        assert all(ctl.observe(5.0) is None for _ in range(9))
        assert ctl.observe(5.0) == "degrade"

    def test_upgrade_needs_slack_and_is_lazy(self):
        ctl = HysteresisController(deadline_ms=1.0, window=16,
                                   min_observations=4, cooldown=4,
                                   upgrade_cooldown=12)
        decisions = [ctl.observe(0.1) for _ in range(12)]
        # fast latencies, but no upgrade before the longer upgrade cooldown
        assert decisions[:11] == [None] * 11
        assert decisions[11] == "upgrade"

    def test_band_between_thresholds_holds_steady(self):
        ctl = HysteresisController(deadline_ms=1.0, window=16,
                                   min_observations=4, cooldown=2,
                                   upgrade_ratio=0.5)
        assert all(ctl.observe(0.8) is None for _ in range(30))

    def test_transition_resets_the_window(self):
        ctl = HysteresisController(deadline_ms=1.0, window=16,
                                   min_observations=4, cooldown=4)
        while ctl.observe(3.0) != "degrade":
            pass
        ctl.notify_transition()
        assert all(ctl.observe(0.9) is None for _ in range(3))

    def test_invalid_band_rejected(self):
        with pytest.raises(ValueError, match="hysteresis"):
            HysteresisController(1.0, upgrade_ratio=1.0, degrade_ratio=1.0)


class TestAdmissionControl:
    def test_unmeetable_deadline_rejected(self, ladder):
        fastest = ladder.fastest.estimate_ms(1)
        trace = [request(0, 1.0, fastest / 10),    # cannot make it anywhere
                 request(1, 2.0, fastest * 50)]
        server = Server(ladder, ServerConfig(
            deadline_ms=1.0, execute=False, seed=3))
        result = server.run_trace(trace)
        assert result.responses[0].status == REJECTED
        assert result.responses[0].reject_reason == "unmeetable-deadline"
        assert result.responses[1].status == COMPLETED
        assert result.metrics.counters["rejected"].value == 1
        assert result.metrics.counters["admitted"].value == 1

    def test_queue_full_rejects(self, ladder):
        slowest = ladder.rungs[0].estimate_ms(1)
        # 8 simultaneous arrivals, capacity 2, batch 1: some must drop
        trace = [request(i, 0.001, slowest * 100) for i in range(8)]
        server = Server(ladder, ServerConfig(
            deadline_ms=slowest * 100, queue_capacity=2, max_batch=1,
            adaptive=False, execute=False, seed=3))
        result = server.run_trace(trace)
        reasons = {r.reject_reason for r in result.rejected}
        assert reasons == {"queue-full"}
        assert len(result.rejected) >= 1
        assert (result.metrics.counters["rejected"].value
                + result.metrics.counters["admitted"].value) == 8

    def test_admission_off_admits_everything(self, ladder):
        fastest = ladder.fastest.estimate_ms(1)
        trace = [request(i, 1.0 + i, fastest / 10) for i in range(4)]
        server = Server(ladder, ServerConfig(
            deadline_ms=1.0, execute=False, admission_control=False,
            seed=3))
        result = server.run_trace(trace)
        assert all(r.status == COMPLETED for r in result.responses)
        assert result.metrics.miss_rate == 1.0


class TestServingEndToEnd:
    """The acceptance scenario: overload the full TRN, let the ladder save
    the deadline. Everything is seeded; no wall clock anywhere."""

    DEADLINE_FACTOR = 1.6           # deadline relative to the full TRN
    OVERLOAD = 1.4                  # offered load on the full TRN

    @pytest.fixture(scope="class")
    def scenario(self, ladder):
        full_ms = ladder.rungs[0].estimate_ms(1)
        deadline = full_ms * self.DEADLINE_FACTOR
        rate_rps = self.OVERLOAD / full_ms * 1e3
        trace = poisson_trace(1500, rate_rps, deadline, rng=0)
        assert offered_load(trace, full_ms) > 1.0   # truly unstable
        return trace, deadline

    def test_full_trn_misses_at_least_20_percent(self, ladder, scenario):
        trace, deadline = scenario
        server = Server(ladder, ServerConfig(
            deadline_ms=deadline, execute=False, seed=1,
            adaptive=False, admission_control=False, max_batch=1))
        result = server.run_trace(trace)
        assert result.metrics.miss_rate >= 0.20
        assert result.metrics.counters["degrade_events"].value == 0

    def test_ladder_brings_miss_rate_below_5_percent(self, ladder, scenario):
        trace, deadline = scenario
        server = Server(ladder, ServerConfig(
            deadline_ms=deadline, execute=False, seed=1,
            admission_control=False))
        result = server.run_trace(trace)
        assert result.metrics.counters["degrade_events"].value >= 1
        assert result.metrics.miss_rate < 0.05

    def test_deterministic_replay(self, ladder, scenario):
        trace, deadline = scenario
        server = Server(ladder, ServerConfig(
            deadline_ms=deadline, execute=False, seed=1))
        a = server.run_trace(trace).metrics.snapshot()
        b = server.run_trace(trace).metrics.snapshot()
        assert a == b

    def test_burst_degrades_then_upgrades(self, ladder):
        """A load spike pushes the ladder down; the quiet tail lets it
        climb back (hysteresis, not one-way degradation)."""
        full_ms = ladder.rungs[0].estimate_ms(1)
        deadline = full_ms * self.DEADLINE_FACTOR
        rate_rps = 0.4 / full_ms * 1e3
        trace = poisson_trace(4000, rate_rps, deadline, rng=2,
                              burst=(0.2, 0.5, 3.0))
        server = Server(ladder, ServerConfig(
            deadline_ms=deadline, execute=False, seed=1,
            admission_control=False))
        result = server.run_trace(trace)
        m = result.metrics
        assert m.counters["degrade_events"].value >= 1
        assert m.counters["upgrade_events"].value >= 1
        directions = [e.direction for e in m.events]
        assert directions.index("degrade") < directions.index("upgrade")
        assert m.miss_rate < 0.05

    def test_outputs_are_real_inference(self, ladder):
        """execute=True must produce the same outputs as a direct batched
        forward through the serving rung."""
        ladder.reset(0)
        rng = np.random.default_rng(0)
        xs = [rng.normal(size=(8, 8, 3)).astype(np.float32)
              for _ in range(4)]
        trace = [request(i, 0.001, 100.0, x=xs[i]) for i in range(4)]
        server = Server(ladder, ServerConfig(
            deadline_ms=100.0, execute=True, adaptive=False, seed=0,
            max_batch=4))
        result = server.run_trace(trace)
        rung = ladder.rungs[0]
        expected = rung.network.forward_batch(xs)
        got = np.stack([r.output for r in result.responses])
        np.testing.assert_allclose(got, expected, rtol=1e-5, atol=1e-6)
        assert result.responses[0].batch_size == 4


class TestMetricsSnapshot:
    @pytest.fixture(scope="class")
    def run(self, ladder):
        full_ms = ladder.rungs[0].estimate_ms(1)
        deadline = full_ms * 1.6
        trace = poisson_trace(600, 1.2 / full_ms * 1e3, deadline, rng=5)
        server = Server(ladder, ServerConfig(
            deadline_ms=deadline, execute=False, seed=2))
        return server.run_trace(trace)

    def test_counters_are_conserved(self, run):
        c = run.metrics.snapshot()["counters"]
        assert c["arrived"] == 600
        assert c["admitted"] + c["rejected"] == c["arrived"]
        assert c["completed"] == c["admitted"]
        assert c["deadline_miss"] == len(run.missed)
        assert c["deadline_miss"] <= c["completed"]

    def test_quantiles_are_ordered_and_bounded(self, run):
        lat = run.metrics.snapshot()["latency"]
        assert lat["count"] == run.metrics.counters["completed"].value
        assert lat["p50_ms"] <= lat["p95_ms"] <= lat["p99_ms"]
        assert lat["p99_ms"] <= lat["max_ms"]
        assert lat["min_ms"] <= lat["p50_ms"]

    def test_miss_rate_matches_responses(self, run):
        snap = run.metrics.snapshot()
        done = [r for r in run.responses if r.status == COMPLETED]
        missed = [r for r in done if not r.deadline_met]
        assert snap["miss_rate"] == pytest.approx(len(missed) / len(done))

    def test_per_rung_counts_cover_all_completed(self, run):
        snap = run.metrics.snapshot()
        assert sum(snap["per_rung"].values()) == \
            run.metrics.counters["completed"].value

    def test_transitions_match_counters(self, run):
        snap = run.metrics.snapshot()
        degrades = [t for t in snap["transitions"] if t[1] == "degrade"]
        upgrades = [t for t in snap["transitions"] if t[1] == "upgrade"]
        assert len(degrades) == snap["counters"]["degrade_events"]
        assert len(upgrades) == snap["counters"]["upgrade_events"]

    def test_report_is_printable(self, run):
        text = run.metrics.report()
        for needle in ("deadline", "miss rate", "p50", "p99", "batches"):
            assert needle in text

    def test_histogram_quantile_accuracy(self):
        from repro.serve import LatencyHistogram

        hist = LatencyHistogram()
        rng = np.random.default_rng(0)
        samples = rng.lognormal(mean=0.0, sigma=0.5, size=5000)
        for s in samples:
            hist.observe(float(s))
        for q in (0.5, 0.95, 0.99):
            exact = float(np.quantile(samples, q))
            assert hist.quantile(q) == pytest.approx(exact, rel=0.15)


class TestTraces:
    def test_poisson_trace_is_seeded(self):
        a = poisson_trace(50, 100.0, 1.0, rng=7)
        b = poisson_trace(50, 100.0, 1.0, rng=7)
        assert [r.arrival_ms for r in a] == [r.arrival_ms for r in b]
        assert all(x.arrival_ms < y.arrival_ms for x, y in zip(a, a[1:]))

    def test_burst_compresses_the_middle(self):
        calm = poisson_trace(300, 100.0, 1.0, rng=1)
        bursty = poisson_trace(300, 100.0, 1.0, rng=1,
                               burst=(0.3, 0.7, 10.0))
        span = lambda t: t[-1].arrival_ms - t[0].arrival_ms  # noqa: E731
        assert span(bursty) < span(calm)

    def test_uniform_trace_rate(self):
        t = uniform_trace(100, 1000.0, 1.0)
        gaps = np.diff([r.arrival_ms for r in t])
        assert np.allclose(gaps, 1.0)

    def test_rendered_payloads(self):
        t = poisson_trace(3, 100.0, 1.0, rng=0, image_size=8, render=True)
        for r in t:
            assert r.x.shape == (8, 8, 3)
            assert r.x.dtype == np.float32


class TestBatchedForward:
    def test_forward_batch_matches_looped_forward(self, tiny_net, rng):
        xs = [rng.normal(size=(8, 8, 3)).astype(np.float32)
              for _ in range(5)]
        batched = tiny_net.forward_batch(xs)
        looped = np.stack([tiny_net.forward(x[None])[0] for x in xs])
        np.testing.assert_allclose(batched, looped, rtol=1e-5, atol=1e-6)

    def test_single_sample_forward_autobatches(self, tiny_net, rng):
        x = rng.normal(size=(8, 8, 3)).astype(np.float32)
        out = tiny_net.forward(x)
        assert out.shape == (5,)
        np.testing.assert_allclose(out, tiny_net.forward(x[None])[0],
                                   rtol=1e-6, atol=1e-7)

    def test_single_sample_capture_is_unbatched(self, tiny_net, rng):
        x = rng.normal(size=(8, 8, 3)).astype(np.float32)
        out, acts = tiny_net.forward(x, capture=["b1_relu"])
        assert out.shape == (5,)
        assert acts["b1_relu"].ndim == 3

    def test_forward_batch_rejects_empty(self, tiny_net):
        with pytest.raises(ValueError, match="at least one"):
            tiny_net.forward_batch([])
