"""Numeric gradient checks for every differentiable layer.

Each test compares the analytic backward pass against central finite
differences, for both parameter gradients and input gradients. All checks
run in float64 via a scalar loss ``sum(out * probe)``.
"""

import numpy as np
import pytest

from repro.nn import (
    Add,
    AvgPool2D,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    ReLU6,
    Softmax,
)

EPS = 1e-3
TOL = 2e-2  # float32 storage limits precision


def build(layer, in_shapes=((6, 6, 3),), seed=3):
    layer.build(list(in_shapes), np.random.default_rng(seed))
    return layer


def check_input_grad(layer, inputs, training=False, index=0):
    rng = np.random.default_rng(7)
    out = layer.forward([x.copy() for x in inputs], training=training)
    probe = rng.normal(size=out.shape)
    grads = layer.backward(probe)
    analytic = grads[index]

    x = inputs[index]
    flat = x.reshape(-1)
    for pos in rng.choice(flat.size, size=min(6, flat.size), replace=False):
        orig = flat[pos]
        flat[pos] = orig + EPS
        up = float(np.sum(layer.forward(
            [a.copy() for a in inputs], training=training) * probe))
        flat[pos] = orig - EPS
        down = float(np.sum(layer.forward(
            [a.copy() for a in inputs], training=training) * probe))
        flat[pos] = orig
        numeric = (up - down) / (2 * EPS)
        assert analytic.reshape(-1)[pos] == pytest.approx(
            numeric, rel=TOL, abs=1e-4)


def check_param_grad(layer, inputs, pname, training=False):
    rng = np.random.default_rng(11)
    layer.zero_grad()
    out = layer.forward([x.copy() for x in inputs], training=training)
    probe = rng.normal(size=out.shape)
    layer.backward(probe)
    param = layer.params[pname]
    analytic = param.grad.reshape(-1)

    flat = param.value.reshape(-1)
    for pos in rng.choice(flat.size, size=min(6, flat.size), replace=False):
        orig = flat[pos]
        flat[pos] = orig + EPS
        up = float(np.sum(layer.forward(
            [a.copy() for a in inputs], training=training) * probe))
        flat[pos] = orig - EPS
        down = float(np.sum(layer.forward(
            [a.copy() for a in inputs], training=training) * probe))
        flat[pos] = orig
        numeric = (up - down) / (2 * EPS)
        assert analytic[pos] == pytest.approx(numeric, rel=TOL, abs=1e-4)


@pytest.fixture
def x_img(rng):
    return rng.normal(size=(2, 6, 6, 3)).astype(np.float32)


class TestConvGradients:
    def test_input_grad_same(self, x_img):
        check_input_grad(build(Conv2D(4, 3, padding="same")), [x_img])

    def test_input_grad_strided(self, x_img):
        check_input_grad(build(Conv2D(4, 3, stride=2)), [x_img])

    def test_input_grad_valid(self, x_img):
        check_input_grad(build(Conv2D(4, 3, padding="valid")), [x_img])

    def test_weight_grad(self, x_img):
        check_param_grad(build(Conv2D(4, 3)), [x_img], "w")

    def test_bias_grad(self, x_img):
        check_param_grad(build(Conv2D(4, 3)), [x_img], "b")

    def test_rect_kernel_grads(self, x_img):
        layer = build(Conv2D(2, (1, 5)))
        check_input_grad(layer, [x_img])
        check_param_grad(layer, [x_img], "w")


class TestDepthwiseGradients:
    def test_input_grad(self, x_img):
        check_input_grad(build(DepthwiseConv2D(3)), [x_img])

    def test_input_grad_strided(self, x_img):
        check_input_grad(build(DepthwiseConv2D(3, stride=2)), [x_img])

    def test_weight_grad(self, x_img):
        check_param_grad(build(DepthwiseConv2D(3)), [x_img], "w")


class TestDenseGradients:
    def test_input_and_params(self, rng):
        x = rng.normal(size=(4, 7)).astype(np.float32)
        layer = build(Dense(5), [(7,)])
        check_input_grad(layer, [x])
        check_param_grad(layer, [x], "w")
        check_param_grad(layer, [x], "b")


class TestBatchNormGradients:
    def test_input_grad_training(self, rng):
        x = rng.normal(size=(8, 5)).astype(np.float32)
        check_input_grad(build(BatchNorm(), [(5,)]), [x], training=True)

    def test_input_grad_inference(self, rng):
        layer = build(BatchNorm(), [(5,)])
        warm = rng.normal(size=(20, 5)).astype(np.float32)
        layer.forward([warm], training=True)
        x = rng.normal(size=(4, 5)).astype(np.float32)
        check_input_grad(layer, [x], training=False)

    def test_gamma_beta_grads(self, rng):
        x = rng.normal(size=(8, 5)).astype(np.float32)
        layer = build(BatchNorm(), [(5,)])
        check_param_grad(layer, [x], "gamma", training=True)
        check_param_grad(layer, [x], "beta", training=True)


class TestPoolingGradients:
    def test_maxpool(self, rng):
        x = rng.normal(size=(2, 6, 6, 2)).astype(np.float32)
        check_input_grad(MaxPool2D(2), [x])

    def test_maxpool_same_padding(self, rng):
        x = rng.normal(size=(2, 5, 5, 2)).astype(np.float32)
        check_input_grad(MaxPool2D(3, 2, "same"), [x])

    def test_avgpool(self, rng):
        x = rng.normal(size=(2, 6, 6, 2)).astype(np.float32)
        check_input_grad(AvgPool2D(2), [x])

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 4, 4, 3)).astype(np.float32)
        check_input_grad(GlobalAvgPool(), [x])


class TestElementwiseGradients:
    def test_relu(self, rng):
        x = rng.normal(size=(3, 7)).astype(np.float32) + 0.05
        check_input_grad(ReLU(), [x])

    def test_relu6(self, rng):
        x = (rng.normal(size=(3, 7)) * 4).astype(np.float32) + 0.05
        check_input_grad(ReLU6(), [x])

    def test_softmax(self, rng):
        x = rng.normal(size=(3, 5)).astype(np.float32)
        check_input_grad(Softmax(), [x])

    def test_add_both_inputs(self, rng):
        a = rng.normal(size=(2, 4)).astype(np.float32)
        b = rng.normal(size=(2, 4)).astype(np.float32)
        check_input_grad(Add(), [a, b], index=0)
        check_input_grad(Add(), [a, b], index=1)

    def test_concat_both_inputs(self, rng):
        a = rng.normal(size=(2, 3, 3, 2)).astype(np.float32)
        b = rng.normal(size=(2, 3, 3, 4)).astype(np.float32)
        check_input_grad(Concat(), [a, b], index=0)
        check_input_grad(Concat(), [a, b], index=1)


class TestEndToEndGradient:
    def test_whole_network_gradient(self, tiny_net, small_images, soft_labels):
        """Numeric check through the full tiny network and loss."""
        from repro.nn.losses import softmax_cross_entropy

        tiny_net.output_name = "logits"
        tiny_net.zero_grad()
        tiny_net.forward_backward(small_images,
                                  loss_fn=softmax_cross_entropy,
                                  y=soft_labels, training=True)
        p = tiny_net.nodes["b1_conv"].layer.params["w"]
        analytic = p.grad[0, 0, 0, 0]
        p.value[0, 0, 0, 0] += EPS
        up, _ = softmax_cross_entropy(
            tiny_net.forward(small_images, training=True), soft_labels)
        p.value[0, 0, 0, 0] -= 2 * EPS
        down, _ = softmax_cross_entropy(
            tiny_net.forward(small_images, training=True), soft_labels)
        p.value[0, 0, 0, 0] += EPS
        numeric = (up - down) / (2 * EPS)
        assert analytic == pytest.approx(numeric, rel=5e-2, abs=1e-4)
