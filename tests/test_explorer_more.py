"""Additional explorer and workbench coverage: iterative mode, caching."""

import numpy as np
import pytest

from repro.data import make_hands_dataset
from repro.device.spec import DeviceSpec
from repro.experiments import ExperimentConfig, Workbench
from repro.netcut import explore_blockwise
from repro.train import PretrainConfig

from test_train import make_tiny_net32


@pytest.fixture(scope="module")
def device():
    return DeviceSpec("t", 10, 1, 5, 1e4)


@pytest.fixture(scope="module")
def hands():
    return make_hands_dataset(50, seed=6).split(0.7, rng=0)


class TestIterativeExploration:
    def test_iterative_has_more_records(self, device, hands):
        train, test = hands
        net = make_tiny_net32()
        block = explore_blockwise([net], train, test, device,
                                  head_epochs=5, iterative=False)
        it = explore_blockwise([net], train, test, device,
                               head_epochs=5, iterative=True)
        assert it.networks_trained > block.networks_trained

    def test_iterative_includes_intrablock_cuts(self, device, hands):
        train, test = hands
        net = make_tiny_net32()
        it = explore_blockwise([net], train, test, device,
                               head_epochs=5, iterative=True)
        blocks_removed = {r.blocks_removed for r in it.records}
        assert None in blocks_removed  # intra-block cutpoints present


class TestWorkbenchCaching:
    @pytest.fixture(scope="class")
    def wb(self, tmp_path_factory):
        config = ExperimentConfig(networks=("mobilenet_v1_0.25",),
                                  hands_images=40, head_epochs=4,
                                  deadline_ms=0.3)
        return Workbench(
            config, cache_dir=str(tmp_path_factory.mktemp("wbc")),
            pretrain_config=PretrainConfig(n_images=40, epochs=1,
                                           batch_size=16))

    def test_latency_dataset_disk_roundtrip(self, wb):
        first = wb.latency_dataset()
        wb._latency_points = None  # force reload from disk
        second = wb.latency_dataset()
        assert len(first) == len(second)
        for a, b in zip(first, second):
            assert a.trn_name == b.trn_name
            assert a.measured_ms == pytest.approx(b.measured_ms)
            np.testing.assert_allclose(a.features.as_array(),
                                       b.features.as_array())

    def test_cache_is_device_specific(self, wb, tmp_path):
        """Different devices must not share exploration caches."""
        other_device = DeviceSpec("other-device", 5, 0.5, 10, 1e4)
        other = Workbench(wb.config, device=other_device,
                          cache_dir=wb.cache_dir,
                          pretrain_config=wb.pretrain_config)
        assert other._cache_path("latency") != wb._cache_path("latency")

    def test_netcut_linear_estimator(self, wb):
        result = wb.netcut("linear")
        assert result.estimator_name == "linear"
        assert result.candidates

    def test_analytical_tuned_runs(self, wb):
        model, test_idx = wb.analytical_model("rbf", tune=True)
        assert model.search_result is not None
        assert len(test_idx) > 0

    def test_iterative_exploration_cached(self, wb):
        a = wb.iterative_exploration("mobilenet_v1_0.25")
        b = wb.iterative_exploration("mobilenet_v1_0.25")
        assert a.records == b.records
