"""Tests for the terminal visualiser and the CLI."""

import pytest

from repro.viz import curve, scatter


class TestScatter:
    def test_contains_markers_and_labels(self):
        out = scatter({"a": [(0, 0), (1, 1)], "b": [(0.5, 0.5)]},
                      xlabel="lat", ylabel="acc")
        assert "o a" in out and "x b" in out
        assert "lat" in out and "acc" in out

    def test_vline_drawn(self):
        out = scatter({"a": [(0, 0), (2, 1)]}, vline=1.0, width=40)
        assert "|" in out

    def test_extreme_points_on_grid(self):
        out = scatter({"a": [(0, 0), (10, 5)]}, width=30, height=8)
        lines = out.splitlines()
        assert any("o" in line for line in lines)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter({"a": []})

    def test_degenerate_single_point(self):
        out = scatter({"a": [(1.0, 1.0)]})
        assert "o" in out

    def test_curve_wrapper(self):
        out = curve([0, 1, 2], [0, 1, 4], ylabel="y2")
        assert "y2" in out


class TestCLI:
    def test_parser_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["netcut", "--deadline", "1.2",
                                  "--estimator", "analytical"])
        assert args.command == "netcut"
        assert args.deadline == 1.2

    def test_parser_rejects_unknown_estimator(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["netcut", "--estimator", "psychic"])

    def test_zoo_command_runs(self, capsys):
        from repro.cli import main

        assert main(["zoo"]) == 0
        out = capsys.readouterr().out
        assert "densenet121" in out
        assert "mobilenet_v1_0.25" in out

    def test_requires_subcommand(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([])
