"""Deeper structural tests of the zoo architectures.

These pin down the architecture details that layer removal relies on:
spatial schedules, residual/concat topology, width-multiplier effects and
the correspondence between block tags and the papers' block definitions.
"""

import numpy as np
import pytest

from repro.nn.layers import Add, Concat, Conv2D, DepthwiseConv2D
from repro.zoo import build_network


@pytest.fixture(scope="module")
def nets():
    return {name: build_network(name).build(0)
            for name in ("mobilenet_v1_0.5", "mobilenet_v2_1.0",
                         "resnet50", "densenet121", "inception_v3")}


class TestSpatialSchedules:
    def test_mobilenet_v1_ends_at_2x2(self, nets):
        """Stride-1 stem + 4 stride-2 blocks: 32 -> 2."""
        net = nets["mobilenet_v1_0.5"]
        h, w, _ = net.shape_of("block13_pw_relu")
        assert (h, w) == (2, 2)

    def test_mobilenet_v1_stem_keeps_resolution(self, nets):
        """CIFAR-style adaptation: the stem does not downsample."""
        net = nets["mobilenet_v1_0.5"]
        assert net.shape_of("stem_relu")[:2] == (32, 32)

    def test_resnet_stage_resolutions(self, nets):
        net = nets["resnet50"]
        assert net.shape_of("stem_pool")[:2] == (8, 8)
        assert net.shape_of("block3_out")[:2] == (8, 8)    # stage 1
        assert net.shape_of("block7_out")[:2] == (4, 4)    # stage 2
        assert net.shape_of("block13_out")[:2] == (2, 2)   # stage 3
        assert net.shape_of("block16_out")[:2] == (1, 1)   # stage 4

    def test_inception_grid_sizes(self, nets):
        net = nets["inception_v3"]
        assert net.shape_of("mixed3_concat")[:2] == (8, 8)   # module A grid
        assert net.shape_of("mixed8_concat")[:2] == (4, 4)   # module C grid
        assert net.shape_of("mixed11_concat")[:2] == (2, 2)  # module E grid


class TestTopology:
    def test_resnet_has_16_residual_adds(self, nets):
        adds = [n for n in nets["resnet50"].nodes.values()
                if isinstance(n.layer, Add)]
        assert len(adds) == 16

    def test_mobilenet_v2_residual_count(self, nets):
        """V2 skips connect only stride-1 blocks with matching channels:
        repeats 2..n of each group -> 10 of the 17 blocks."""
        adds = [n for n in nets["mobilenet_v2_1.0"].nodes.values()
                if isinstance(n.layer, Add)]
        assert len(adds) == 10

    def test_densenet_concat_count(self, nets):
        """One concatenation per composite layer: 6+12+24+16 = 58."""
        concats = [n for n in nets["densenet121"].nodes.values()
                   if isinstance(n.layer, Concat)]
        assert len(concats) == 58

    def test_densenet_channel_growth(self, nets):
        """Each composite layer adds exactly the growth rate in channels."""
        net = nets["densenet121"]
        g = net.shape_of("dense1_1_concat")[-1] - net.shape_of("stem_pool")[-1]
        assert g > 0
        c1 = net.shape_of("dense1_2_concat")[-1]
        c0 = net.shape_of("dense1_1_concat")[-1]
        assert c1 - c0 == g

    def test_inception_module_branch_counts(self, nets):
        """Module A concatenates 4 branches; module E concatenates 6
        tensors (its 3x3 branches split into 1x3/3x1 pairs)."""
        net = nets["inception_v3"]
        assert len(net.nodes["mixed1_concat"].inputs) == 4
        assert len(net.nodes["mixed11_concat"].inputs) == 6

    def test_mobilenet_v1_alternates_dw_pw(self, nets):
        net = nets["mobilenet_v1_0.5"]
        for b in range(1, 14):
            assert isinstance(net.nodes[f"block{b}_dw"].layer,
                              DepthwiseConv2D)
            assert isinstance(net.nodes[f"block{b}_pw_conv"].layer, Conv2D)
            assert net.nodes[f"block{b}_pw_conv"].layer.kernel == (1, 1)


class TestWidthMultipliers:
    def test_channels_scale_with_alpha(self):
        narrow = build_network("mobilenet_v1_0.25").build(0)
        wide = build_network("mobilenet_v1_0.5").build(0)
        for b in (6, 13):
            assert (wide.shape_of(f"block{b}_pw_relu")[-1]
                    >= 2 * narrow.shape_of(f"block{b}_pw_relu")[-1] * 0.9)

    def test_v2_expansion_factor(self):
        net = build_network("mobilenet_v2_1.0").build(0)
        # block 2 expands its input channels 6x before the depthwise conv
        in_ch = net.shape_of("block1_pbn")[-1]
        expanded = net.shape_of("block2_expand_relu")[-1]
        assert expanded == 6 * in_ch


class TestFunctionalSanity:
    @pytest.mark.parametrize("name", ["resnet50", "densenet121"])
    def test_training_mode_runs(self, nets, name, rng):
        x = rng.normal(size=(2, 32, 32, 3)).astype(np.float32)
        out = nets[name].forward(x, training=True)
        assert np.isfinite(out).all()

    def test_pretrained_weights_change_output(self, rng):
        """Pretraining must actually alter predictions vs fresh init."""
        from repro.train import PretrainConfig, pretrain

        fresh = build_network("mobilenet_v1_0.25").build(0)
        trained = build_network("mobilenet_v1_0.25").build(0)
        pretrain(trained, PretrainConfig(n_images=40, epochs=1,
                                         batch_size=16))
        x = rng.normal(size=(2, 32, 32, 3)).astype(np.float32)
        assert not np.allclose(fresh.forward(x), trained.forward(x))
