"""Error-path coverage across the public API."""

import numpy as np
import pytest

from repro.device.profiler import LatencyTable, LayerRecord
from repro.device.quantize import QuantizedNetwork
from repro.estimators import ProfilerEstimator
from repro.hand import ControlLoopSpec
from repro.netcut.explorer import Exploration, TRNRecord
from repro.nn import Dense, Network, ReLU, Softmax

from conftest import make_tiny_net


class TestProfilerEstimatorErrors:
    def test_table_with_only_head_records_rejected(self, tiny_net):
        head_only = LatencyTable(
            tiny_net.name, "dev",
            (LayerRecord("logits", ("logits",), 0.1),), 0.5)
        with pytest.raises(ValueError, match="feature-layer"):
            ProfilerEstimator(tiny_net, head_only)

    def test_estimate_ignores_unknown_removed_names(self, tiny_net,
                                                    tiny_device):
        from repro.device import profile_network

        table = profile_network(tiny_net, tiny_device)
        est = ProfilerEstimator(tiny_net, table)
        # names not in the table simply contribute nothing
        assert est.estimate({"no_such_node"}) == pytest.approx(
            est.estimate(set()))


class TestQuantizeErrors:
    def test_bad_percentile_rejected(self, tiny_net, small_images):
        with pytest.raises(ValueError, match="percentile"):
            QuantizedNetwork(tiny_net, small_images, percentile=10.0)

    def test_single_calibration_image_works(self, tiny_net, small_images):
        qnet = QuantizedNetwork(tiny_net, small_images[:1])
        out = qnet.forward(small_images)
        assert np.isfinite(out).all()


class TestControlLoopErrors:
    def test_zero_budget_loop_rejected(self):
        spec = ControlLoopSpec(preprocess_ms=10.0)  # eats the whole period
        with pytest.raises(ValueError, match="infeasible"):
            spec.visual_deadline_ms()


class TestExplorationQueries:
    def test_for_base_unknown_returns_empty(self):
        ex = Exploration([TRNRecord("a", "a/1", "c", 1, 2, 0.5, 0.6, 0.1,
                                    8, 100, 10)])
        assert ex.for_base("missing") == []

    def test_originals_empty_when_no_zero_cut(self):
        ex = Exploration([TRNRecord("a", "a/1", "c", 3, 2, 0.5, 0.6, 0.1,
                                    8, 100, 10)])
        assert ex.originals() == []


class TestNetworkOutputName:
    def test_reassigning_output_changes_forward(self, small_images):
        net = make_tiny_net()
        probs = net.forward(small_images)
        net.output_name = "logits"
        logits = net.forward(small_images)
        assert not np.allclose(probs, logits)
        # softmax of the logits recovers the probabilities
        e = np.exp(logits - logits.max(axis=1, keepdims=True))
        np.testing.assert_allclose(e / e.sum(axis=1, keepdims=True), probs,
                                   rtol=1e-5)


class TestHeadTransplantErrors:
    def test_shape_mismatch_detected(self, tiny_net):
        from repro.train import build_head_network, transplant_head
        from repro.trim import build_trn

        trn = build_trn(tiny_net, "b2_add", 5)
        wrong_head = build_head_network(99, 5)  # wrong input width
        with pytest.raises(ValueError, match="mismatch"):
            transplant_head(wrong_head, trn)

    def test_missing_nodes_detected(self, tiny_net):
        from repro.train import transplant_head

        not_a_head = Network("x", (4,))
        not_a_head.add("fc", Dense(3))
        not_a_head.add("r", ReLU())
        not_a_head.add("s", Softmax())
        not_a_head.build(0)
        from repro.trim import build_trn

        trn = build_trn(tiny_net, "b2_add", 5)
        with pytest.raises(KeyError):
            transplant_head(not_a_head, trn)
