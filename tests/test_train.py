"""Tests for transfer-learning machinery: features, heads, fine-tuning."""

import numpy as np
import pytest

from repro.data import make_hands_dataset
from repro.metrics import mean_angular_similarity
from repro.train import (
    TrainConfig,
    build_head_network,
    evaluate,
    fine_tune,
    predict,
    record_gap_features,
    train_head_on_features,
)
from repro.trim import build_trn



@pytest.fixture(scope="module")
def hands_small():
    return make_hands_dataset(80, seed=2).split(0.75, rng=0)


class TestRecordGapFeatures:
    def test_matches_manual_gap(self, tiny_net, small_images):
        feats = record_gap_features(tiny_net, small_images, ["b1_relu"])
        _, acts = tiny_net.forward(small_images, capture=["b1_relu"])
        np.testing.assert_allclose(feats["b1_relu"],
                                   acts["b1_relu"].mean(axis=(1, 2)),
                                   rtol=1e-5)

    def test_flat_node_passthrough(self, tiny_net, small_images):
        feats = record_gap_features(tiny_net, small_images, ["gap"])
        assert feats["gap"].shape == (6, 4)

    def test_batching_consistent(self, tiny_net, rng):
        x = rng.normal(size=(10, 8, 8, 3)).astype(np.float32)
        whole = record_gap_features(tiny_net, x, ["b2_add"], batch_size=100)
        pieces = record_gap_features(tiny_net, x, ["b2_add"], batch_size=3)
        np.testing.assert_allclose(whole["b2_add"], pieces["b2_add"],
                                   rtol=2e-5, atol=1e-6)

    def test_duplicate_nodes_deduplicated(self, tiny_net, small_images):
        feats = record_gap_features(tiny_net, small_images,
                                    ["b1_relu", "b1_relu"])
        assert list(feats) == ["b1_relu"]


class TestHeadNetwork:
    def test_structure(self):
        head = build_head_network(16, 5)
        assert head.forward(np.zeros((2, 16), dtype=np.float32)).shape == (2, 5)

    def test_paper_layers_present(self):
        head = build_head_network(16, 5)
        kinds = [type(n.layer).__name__ for n in head.nodes.values()]
        # input + 2x (Dense, ReLU) + Dense + Softmax
        assert kinds.count("Dense") == 3
        assert kinds.count("ReLU") == 2
        assert kinds[-1] == "Softmax"


class TestTrainHeadOnFeatures:
    def test_learns_separable_features(self, rng):
        n, k = 120, 5
        centers = rng.normal(size=(k, 8)) * 3
        labels = rng.integers(0, k, n)
        x = centers[labels] + rng.normal(size=(n, 8)) * 0.3
        y = np.eye(k, dtype=np.float32)[labels]
        result = train_head_on_features(x.astype(np.float32), y, k,
                                        epochs=60, rng=0)
        assert result.train_accuracy > 0.78
        assert len(result.losses) == 60
        assert result.losses[-1] < result.losses[0]

    def test_respects_seed(self, rng):
        x = rng.normal(size=(30, 6)).astype(np.float32)
        y = np.abs(rng.normal(size=(30, 5))).astype(np.float32)
        y /= y.sum(1, keepdims=True)
        a = train_head_on_features(x, y, 5, epochs=5, rng=4)
        b = train_head_on_features(x, y, 5, epochs=5, rng=4)
        np.testing.assert_array_equal(a.network.forward(x),
                                      b.network.forward(x))


class TestFineTune:
    def test_two_phase_improves_over_init(self, hands_small):
        train_data, test_data = hands_small
        trn = build_trn(make_tiny_net32(), "b2_add", 5)
        before = evaluate(trn, train_data)
        result = fine_tune(trn, train_data, test_data,
                           TrainConfig(epochs_frozen=20, epochs_full=30,
                                       lr_full=1e-3, batch_size=16))
        assert result.train_accuracy > before + 0.05
        assert result.losses[-1] < result.losses[0]
        assert not np.isnan(result.test_accuracy)

    def test_phase_one_freezes_features(self, hands_small):
        train_data, _ = hands_small
        net32 = make_tiny_net32()
        trn = build_trn(net32, "b2_add", 5)
        w_before = trn.nodes["b1_conv"].layer.params["w"].value.copy()
        fine_tune(trn, train_data,
                  config=TrainConfig(epochs_frozen=3, epochs_full=0,
                                     batch_size=16))
        np.testing.assert_array_equal(
            trn.nodes["b1_conv"].layer.params["w"].value, w_before)

    def test_phase_two_updates_features(self, hands_small):
        train_data, _ = hands_small
        net32 = make_tiny_net32()
        trn = build_trn(net32, "b2_add", 5)
        w_before = trn.nodes["b1_conv"].layer.params["w"].value.copy()
        fine_tune(trn, train_data,
                  config=TrainConfig(epochs_frozen=1, epochs_full=2,
                                     batch_size=16))
        assert not np.array_equal(
            trn.nodes["b1_conv"].layer.params["w"].value, w_before)

    def test_network_left_unfrozen_with_probs_output(self, hands_small):
        train_data, _ = hands_small
        trn = build_trn(make_tiny_net32(), "b2_add", 5)
        fine_tune(trn, train_data,
                  config=TrainConfig(epochs_frozen=1, epochs_full=1,
                                     batch_size=16))
        assert trn.output_name == "head_probs"
        assert len(list(trn.parameters())) == len(
            list(trn.parameters(trainable_only=False)))


class TestPredictEvaluate:
    def test_predict_batched_equals_whole(self, hands_small):
        train_data, _ = hands_small
        trn = build_trn(make_tiny_net32(), "b1_relu", 5)
        np.testing.assert_allclose(predict(trn, train_data.x, batch_size=7),
                                   predict(trn, train_data.x, batch_size=512),
                                   rtol=2e-5, atol=1e-6)

    def test_evaluate_is_mean_angular_similarity(self, hands_small):
        train_data, _ = hands_small
        trn = build_trn(make_tiny_net32(), "b1_relu", 5)
        manual = mean_angular_similarity(predict(trn, train_data.x),
                                         train_data.y)
        assert evaluate(trn, train_data) == pytest.approx(manual)


def make_tiny_net32():
    """A tiny block-structured net accepting the 32x32 HANDS images."""
    from repro.nn import (
        Add,
        BatchNorm,
        Conv2D,
        Dense,
        GlobalAvgPool,
        MaxPool2D,
        Network,
        ReLU,
        Softmax,
    )

    net = Network("tiny32", (32, 32, 3))
    net.add("stem_conv", Conv2D(4, 3, stride=2), block_id="stem", role="stem")
    net.add("stem_relu", ReLU(), block_id="stem", role="stem")
    prev = "stem_relu"
    for b in (1, 2):
        net.add(f"b{b}_conv", Conv2D(4, 3, stride=1), inputs=prev,
                block_id=f"b{b}")
        net.add(f"b{b}_bn", BatchNorm(), block_id=f"b{b}")
        net.add(f"b{b}_relu", ReLU(), block_id=f"b{b}")
        if b == 2:
            net.add("b2_add", Add(), inputs=[prev, "b2_relu"], block_id="b2")
            prev = "b2_add"
        else:
            prev = f"b{b}_relu"
    net.add("pool", MaxPool2D(2), inputs=prev, block_id="b2")
    net.add("gap", GlobalAvgPool(), role="head")
    net.add("logits", Dense(5), role="head")
    net.add("probs", Softmax(), role="head")
    return net.build(0)
