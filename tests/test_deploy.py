"""Tests for the end-to-end deployment pipeline (reduced workbench)."""

import json

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, Workbench
from repro.netcut import deploy
from repro.nn.serialize import load_network
from repro.train import PretrainConfig


@pytest.fixture(scope="module")
def wb(tmp_path_factory):
    config = ExperimentConfig(
        networks=("mobilenet_v1_0.25", "mobilenet_v1_0.5"),
        hands_images=60, head_epochs=8, deadline_ms=0.35)
    return Workbench(
        config,
        cache_dir=str(tmp_path_factory.mktemp("deploycache")),
        pretrain_config=PretrainConfig(n_images=40, epochs=1,
                                       batch_size=16))


@pytest.fixture(scope="module")
def artifact(wb, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("art") / "trn.npz")
    return deploy(wb, quantize=True, save_path=path)


class TestDeploy:
    def test_meets_deadline_by_measurement(self, artifact, wb):
        assert artifact.meets_deadline
        assert artifact.measured_latency_ms <= wb.config.deadline_ms

    def test_trained_head_grafted(self, artifact, wb):
        """The deployed network must score like the head it was trained
        from — well above an untrained TRN."""
        _, test_data = wb.hands()
        from repro.metrics import mean_angular_similarity

        pred = artifact.network.forward(test_data.x)
        acc = mean_angular_similarity(pred, test_data.y)
        assert acc == pytest.approx(artifact.accuracy, abs=1e-6)
        assert acc > 0.4

    def test_quantized_variant_present(self, artifact):
        assert artifact.quantized is not None
        assert np.isfinite(artifact.int8_accuracy)
        assert artifact.int8_accuracy > artifact.accuracy - 0.08

    def test_serialised_artifact_reloads(self, artifact, wb):
        assert artifact.path is not None
        loaded = load_network(artifact.path)
        _, test_data = wb.hands()
        np.testing.assert_allclose(loaded.forward(test_data.x[:8]),
                                   artifact.network.forward(test_data.x[:8]),
                                   rtol=1e-5, atol=1e-6)

    def test_impossible_deadline_raises(self, wb):
        with pytest.raises(RuntimeError, match="measured latency"):
            deploy(wb, deadline_ms=0.001, quantize=False)

    def test_no_quantize_no_save(self, wb):
        art = deploy(wb, quantize=False)
        assert art.quantized is None
        assert art.path is None
        assert np.isnan(art.int8_accuracy)


class TestDeployBuilderRefactor:
    """deploy() now routes through GreedyLayerRemoval, byte-compatibly."""

    def test_deploy_matches_greedy_builder_byte_for_byte(self, wb,
                                                         tmp_path):
        from repro.netcut import GreedyLayerRemoval

        via_deploy = str(tmp_path / "via_deploy.npz")
        via_builder = str(tmp_path / "via_builder.npz")
        a = deploy(wb, quantize=False, save_path=via_deploy)
        b = GreedyLayerRemoval().deploy(wb, quantize=False,
                                        save_path=via_builder)
        assert a.trn_name == b.trn_name
        assert a.builder == "" and b.builder == ""
        with open(via_deploy, "rb") as fa, open(via_builder, "rb") as fb:
            assert fa.read() == fb.read()

    def test_untagged_npz_meta_has_no_builder_key(self, artifact):
        """The pipeline's .npz format predates the builder tag and must
        not grow the key (pre-refactor byte compatibility)."""
        with np.load(artifact.path) as archive:
            meta = json.loads(str(archive["__artifact__"]))
        assert "builder" not in meta
