"""Tests for repro.workload: generators, tenancy, record/replay, fluid.

Everything runs over virtual time with fixed seeds. The serving-stack
integration tests use the tiny conftest network on a quiet synthetic
device so they stay fast; the fluid-model unit tests run on hand-built
latency tables so the arithmetic is checkable by eye.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from conftest import make_tiny_net
from repro.serve import Server, ServerConfig, TRNLadder
from repro.workload import (
    ConstantRate,
    DiurnalCycle,
    FlashCrowd,
    FluidModel,
    MarkovModulated,
    Superposition,
    TenantClass,
    TenantMix,
    WORKLOAD_KINDS,
    WeightedFairAdmission,
    default_tenants,
    generate_trace,
    load_trace,
    make_process,
    record_run,
    save_trace,
    verify_replay,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def quiet_device():
    from repro.device.spec import DeviceSpec

    return DeviceSpec(
        name="test-device", peak_gflops=10.0, bandwidth_gbps=1.0,
        launch_overhead_us=5.0, occupancy_flops=1e4, noise_std=0.005,
        straggler_prob=0.0, event_overhead_us=2.0)


@pytest.fixture(scope="module")
def ladder(quiet_device):
    return TRNLadder.from_base(make_tiny_net(), quiet_device, num_classes=5)


@pytest.fixture(scope="module")
def mix():
    return TenantMix([
        TenantClass("interactive", deadline_ms=4.0, weight=3.0, share=0.3,
                    priority=1),
        TenantClass("batch", deadline_ms=16.0, weight=1.0, share=0.7),
    ])


class TestArrivalProcesses:
    def test_constant_rate_hits_expected_count(self):
        trace = ConstantRate(5000).arrival_times_ms(1000.0, rng=0)
        # Poisson(5000 rps * 1 s): 5000 +- a few sigma
        assert 4600 < len(trace) < 5400
        assert np.all(np.diff(trace) >= 0)
        assert trace[0] >= 0 and trace[-1] < 1000.0

    def test_same_seed_same_trace(self):
        p = DiurnalCycle(2000, amplitude=0.5, period_ms=300.0)
        a = p.arrival_times_ms(300.0, rng=7)
        b = p.arrival_times_ms(300.0, rng=7)
        assert np.array_equal(a, b)
        c = p.arrival_times_ms(300.0, rng=8)
        assert len(c) != len(a) or not np.array_equal(a, c)

    def test_diurnal_rate_shape(self):
        p = DiurnalCycle(1000, amplitude=0.5, period_ms=400.0)
        assert p.rate_rps(0.0) == pytest.approx(1000.0)
        assert p.rate_rps(100.0) == pytest.approx(1500.0)   # crest
        assert p.rate_rps(300.0) == pytest.approx(500.0)    # trough
        assert p.peak_rate_rps == pytest.approx(1500.0)
        assert p.mean_rate_rps(400.0) == pytest.approx(1000.0, rel=1e-3)

    def test_flash_crowd_phases(self):
        p = FlashCrowd(1000, peak_multiplier=4.0, start_ms=100.0,
                       ramp_ms=20.0, hold_ms=30.0, decay_ms=10.0)
        assert p.rate_rps(50.0) == pytest.approx(1000.0)    # before
        assert p.rate_rps(110.0) == pytest.approx(2500.0)   # mid-ramp
        assert p.rate_rps(130.0) == pytest.approx(4000.0)   # holding
        decayed = float(p.rate_rps(160.0))                  # one tau in
        assert 1000.0 < decayed < 4000.0
        assert float(p.rate_rps(400.0)) == pytest.approx(1000.0, rel=1e-2)

    def test_mmpp_prepare_realises_switches(self):
        p = MarkovModulated((500.0, 4000.0), (50.0, 10.0))
        # un-prepared: flat at the start state
        assert float(p.rate_rps(123.0)) == pytest.approx(500.0)
        p.prepare(500.0, np.random.default_rng(0))
        rates = np.unique(p.rate_rps(np.linspace(0, 500, 2000)))
        assert set(rates) <= {500.0, 4000.0}
        assert len(rates) == 2   # it actually switched within the horizon

    def test_superposition_adds_rates(self):
        p = Superposition(ConstantRate(1000), ConstantRate(250))
        assert float(p.rate_rps(10.0)) == pytest.approx(1250.0)
        assert p.peak_rate_rps == pytest.approx(1250.0)
        assert "constant" in p.describe()

    def test_make_process_covers_all_kinds(self):
        for kind in WORKLOAD_KINDS:
            p = make_process(kind, 1000.0, 200.0)
            assert p.peak_rate_rps > 0
            assert len(p.arrival_times_ms(200.0, rng=0)) > 0
        with pytest.raises(KeyError, match="unknown workload kind"):
            make_process("tsunami", 1000.0, 200.0)

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            ConstantRate(0.0)
        with pytest.raises(ValueError):
            DiurnalCycle(100, amplitude=1.5)
        with pytest.raises(ValueError):
            FlashCrowd(100, peak_multiplier=0.5, start_ms=0.0)
        with pytest.raises(ValueError):
            MarkovModulated((100.0,), (10.0,))
        with pytest.raises(ValueError):
            ConstantRate(100).arrival_times_ms(-1.0)


class TestGenerateTrace:
    def test_single_class_trace(self):
        trace = generate_trace(ConstantRate(2000), 100.0, deadline_ms=5.0,
                               rng=0, start_rid=10)
        assert trace
        assert [r.rid for r in trace] == list(range(10, 10 + len(trace)))
        assert all(r.deadline_ms == 5.0 and r.tenant is None for r in trace)
        arrivals = [r.arrival_ms for r in trace]
        assert arrivals == sorted(arrivals)

    def test_tenant_trace_inherits_deadlines(self, mix):
        trace = generate_trace(ConstantRate(4000), 200.0, tenants=mix, rng=1)
        by_tenant = {t.name: t for t in mix}
        assert {r.tenant for r in trace} == set(by_tenant)
        for r in trace:
            assert r.deadline_ms == by_tenant[r.tenant].deadline_ms
        frac = sum(r.tenant == "batch" for r in trace) / len(trace)
        assert 0.6 < frac < 0.8   # ~0.7 share

    def test_requires_some_deadline(self):
        with pytest.raises(ValueError, match="deadline"):
            generate_trace(ConstantRate(100), 50.0)


class TestTenancy:
    def test_mix_normalises_shares(self, mix):
        assert float(np.sum(mix.shares)) == pytest.approx(1.0)
        assert "interactive" in mix and "nobody" not in mix
        assert mix["batch"].deadline_ms == 16.0
        assert len(mix) == 2
        rates = mix.rates_rps(1000.0)
        assert rates["interactive"] == pytest.approx(300.0)
        assert rates["batch"] == pytest.approx(700.0)

    def test_assign_lifts_single_class_trace(self, mix):
        trace = generate_trace(ConstantRate(1000), 100.0, deadline_ms=1.0,
                               rng=0)
        mix.assign(trace, rng=0)
        assert all(r.tenant in mix for r in trace)
        assert all(r.deadline_ms == mix[r.tenant].deadline_ms for r in trace)

    def test_tenant_class_validation(self):
        with pytest.raises(ValueError):
            TenantClass("", deadline_ms=1.0)
        with pytest.raises(ValueError):
            TenantClass("t", deadline_ms=0.0)
        with pytest.raises(ValueError):
            TenantClass("t", deadline_ms=1.0, weight=0.0)
        with pytest.raises(ValueError):
            TenantMix([])
        with pytest.raises(ValueError, match="unique"):
            TenantMix([TenantClass("a", 1.0), TenantClass("a", 2.0)])

    def test_default_tenants_shape(self):
        mix = default_tenants()
        assert [t.name for t in mix] == ["interactive", "batch"]
        assert mix["interactive"].weight > mix["batch"].weight


class _FakeRequest:
    def __init__(self, tenant):
        self.tenant = tenant


class TestWeightedFairAdmission:
    def policy(self, **kw):
        p = WeightedFairAdmission(default_tenants(), **kw)
        p.reset()
        return p

    def test_inert_below_watermark(self):
        p = self.policy(watermark=0.5)
        for _ in range(50):
            req = _FakeRequest("batch")
            assert p.allow(req, queue_len=10, capacity=64)
            p.record(req)
        # below 0.5 * 64 the flood was never throttled
        assert p.share_of("batch") == pytest.approx(1.0)

    def test_over_share_tenant_throttled_above_watermark(self):
        p = self.policy(watermark=0.25)
        for _ in range(40):
            p.record(_FakeRequest("batch"))
        # batch holds 100% of the window but is only guaranteed 25%
        assert not p.allow(_FakeRequest("batch"), 32, 64)
        assert p.allow(_FakeRequest("interactive"), 32, 64)
        # fair shares come from weights (3:1), not traffic shares
        assert p.fair_share_of("interactive") == pytest.approx(0.75)
        assert p.fair_share_of("batch") == pytest.approx(0.25)

    def test_unknown_and_untagged_bypass(self):
        p = self.policy()
        for _ in range(20):
            p.record(_FakeRequest("batch"))
        assert p.allow(_FakeRequest(None), 64, 64)
        assert p.allow(_FakeRequest("stranger"), 64, 64)
        p.record(_FakeRequest("stranger"))   # not counted either
        assert p.share_of("stranger") == 0.0

    def test_window_slides(self):
        p = self.policy(window=8)
        for _ in range(8):
            p.record(_FakeRequest("batch"))
        for _ in range(8):
            p.record(_FakeRequest("interactive"))
        assert p.share_of("batch") == 0.0   # aged out entirely
        assert p.share_of("interactive") == pytest.approx(1.0)

    def test_reset_forgets_history(self):
        p = self.policy()
        p.record(_FakeRequest("batch"))
        p.reset()
        assert p.share_of("batch") == 0.0
        assert p.allow(_FakeRequest("batch"), 64, 64)

    def test_describe_mentions_shares(self):
        assert "watermark" in self.policy().describe()


class TestEngineTenantIntegration:
    @pytest.fixture(scope="class")
    def served(self, ladder, mix):
        trace = generate_trace(ConstantRate(25000), 150.0, tenants=mix,
                               rng=0)
        policy = WeightedFairAdmission(mix, watermark=0.25)
        config = ServerConfig(deadline_ms=4.0, execute=False, seed=0,
                              queue_capacity=16, adaptive=False,
                              admission_policy=policy)
        return trace, Server(ladder, config).run_trace(trace)

    def test_responses_carry_tenants(self, served):
        trace, result = served
        tenant_of = {r.rid: r.tenant for r in trace}
        assert result.responses
        for resp in result.responses:
            assert resp.tenant == tenant_of[resp.rid]

    def test_snapshot_breaks_down_by_tenant(self, served, mix):
        trace, result = served
        snap = result.metrics.snapshot()
        assert set(snap["tenants"]) == {t.name for t in mix}
        for name, b in snap["tenants"].items():
            arrived = sum(r.tenant == name for r in trace)
            assert b["arrived"] == arrived
            assert b["admitted"] + b["rejected"] == arrived
            assert b["completed"] + b["dropped"] == b["admitted"]
            assert 0.0 <= b["miss_rate"] <= 1.0
        totals = snap["counters"]
        assert sum(b["arrived"] for b in snap["tenants"].values()) \
            == totals["arrived"]
        assert sum(b["completed"] for b in snap["tenants"].values()) \
            == totals["completed"]

    def test_over_share_rejections_are_attributed(self, served):
        _, result = served
        reasons = {r.reject_reason for r in result.responses
                   if r.status == "rejected"}
        assert "tenant-over-share" in reasons
        for resp in result.responses:
            if resp.reject_reason == "tenant-over-share":
                assert resp.tenant is not None

    def test_report_lists_tenants(self, served):
        _, result = served
        report = result.metrics.report()
        assert "interactive" in report and "batch" in report

    def test_merge_tenants_folds_buckets(self, served):
        from repro.serve.metrics import ServerMetrics

        _, result = served
        total = ServerMetrics(4.0)
        total.merge_tenants(result.metrics.tenants)
        total.merge_tenants(result.metrics.tenants)
        one = result.metrics.snapshot()["tenants"]
        two = total.snapshot()["tenants"]
        for name in one:
            assert two[name]["arrived"] == 2 * one[name]["arrived"]
            assert two[name]["miss_rate"] == \
                pytest.approx(one[name]["miss_rate"])


class TestRecordReplay:
    def run_once(self, ladder, mix, trace):
        config = ServerConfig(deadline_ms=4.0, execute=False, seed=0,
                              queue_capacity=16, adaptive=False)
        return Server(ladder, config).run_trace(trace)

    def test_round_trip_preserves_requests(self, tmp_path, mix):
        trace = generate_trace(ConstantRate(2000), 100.0, tenants=mix,
                               rng=0, render=True, image_size=8)
        path = tmp_path / "t.jsonl"
        save_trace(path, trace, meta={"note": "round-trip"})
        loaded = load_trace(path)
        assert loaded.meta == {"note": "round-trip"}
        assert len(loaded) == len(trace)
        assert loaded.tenants() == ["batch", "interactive"]
        for a, b in zip(trace, loaded.requests):
            assert (a.rid, a.arrival_ms, a.deadline_ms, a.tenant) \
                == (b.rid, b.arrival_ms, b.deadline_ms, b.tenant)
            assert np.array_equal(a.x, b.x)

    def test_replay_reproduces_outcomes(self, tmp_path, ladder, mix):
        trace = generate_trace(ConstantRate(2500), 120.0, tenants=mix, rng=3)
        first = self.run_once(ladder, mix, trace)
        path = tmp_path / "run.jsonl"
        record_run(path, trace, first.responses, meta={"seed": 3})
        recorded = load_trace(path)
        assert recorded.meta["statuses"]["completed"] > 0
        again = self.run_once(ladder, mix, recorded.requests)
        assert verify_replay(recorded, again.responses) == []

    def test_verify_replay_flags_divergence(self, tmp_path, ladder, mix):
        trace = generate_trace(ConstantRate(2000), 80.0, tenants=mix, rng=4)
        result = self.run_once(ladder, mix, trace)
        path = tmp_path / "run.jsonl"
        record_run(path, trace, result.responses)
        recorded = load_trace(path)
        problems = verify_replay(recorded, result.responses[:-1])
        assert len(problems) == 1 and "missing from replay" in problems[0]
        recorded.outcomes[0]["rung"] = "not-a-rung"
        problems = verify_replay(recorded, result.responses)
        assert any("differs in" in p and "rung" in p for p in problems)

    def test_load_rejects_foreign_and_truncated_files(self, tmp_path):
        bad_kind = tmp_path / "bad.jsonl"
        bad_kind.write_text('{"kind": "something-else", "version": 1}\n')
        with pytest.raises(ValueError, match="not a workload trace"):
            load_trace(bad_kind)
        bad_version = tmp_path / "v99.jsonl"
        bad_version.write_text(json.dumps(
            {"kind": "repro.workload.trace", "version": 99,
             "meta": {}, "requests": 0, "outcomes": 0}) + "\n")
        with pytest.raises(ValueError, match="unsupported trace version"):
            load_trace(bad_version)
        trace = generate_trace(ConstantRate(1000), 50.0, deadline_ms=2.0)
        full = tmp_path / "full.jsonl"
        save_trace(full, trace)
        lines = full.read_text().splitlines()
        truncated = tmp_path / "cut.jsonl"
        truncated.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(ValueError, match="truncated"):
            load_trace(truncated)

    def test_trace_bytes_stable_across_hash_seeds(self, tmp_path):
        code = (
            "import sys\n"
            "sys.path.insert(0, %r); sys.path.insert(0, %r)\n"
            "from conftest import make_tiny_net\n"
            "from repro.device.spec import DeviceSpec\n"
            "from repro.serve import Server, ServerConfig, TRNLadder\n"
            "from repro.workload import (ConstantRate, default_tenants,\n"
            "    generate_trace, record_run)\n"
            "spec = DeviceSpec(name='d', peak_gflops=10.0,\n"
            "    bandwidth_gbps=1.0, launch_overhead_us=5.0,\n"
            "    occupancy_flops=1e4, noise_std=0.005, straggler_prob=0.0,\n"
            "    event_overhead_us=2.0)\n"
            "ladder = TRNLadder.from_base(make_tiny_net(), spec,\n"
            "                             num_classes=5)\n"
            "trace = generate_trace(ConstantRate(2500), 100.0,\n"
            "    tenants=default_tenants(), rng=0)\n"
            "config = ServerConfig(deadline_ms=3.0, execute=False, seed=0,\n"
            "    queue_capacity=16, adaptive=False)\n"
            "result = Server(ladder, config).run_trace(trace)\n"
            "record_run(sys.argv[1], trace, result.responses,\n"
            "           meta={'seed': 0})\n"
        ) % (os.path.join(REPO, "src"), os.path.join(REPO, "tests"))

        def run(hashseed: str, name: str) -> bytes:
            path = tmp_path / name
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            subprocess.run([sys.executable, "-c", code, str(path)],
                           env=env, check=True, capture_output=True)
            return path.read_bytes()

        first = run("0", "a.jsonl")
        second = run("31337", "b.jsonl")
        assert first == second
        assert first.startswith(b'{"kind": "repro.workload.trace"')


class TestSharedTraceHelpersMoved:
    def test_serve_reexports_are_the_same_objects(self):
        import importlib

        import repro.workload.generators as new

        sys.modules.pop("repro.serve.trace", None)
        with pytest.warns(DeprecationWarning,
                          match="repro.workload.generators"):
            old = importlib.import_module("repro.serve.trace")

        assert old.poisson_trace is new.poisson_trace
        assert old.uniform_trace is new.uniform_trace
        assert old.offered_load is new.offered_load
        # the serve package facade still exports them too
        from repro.serve import poisson_trace
        assert poisson_trace is new.poisson_trace

    def test_serve_facade_import_does_not_warn(self):
        # importing the supported re-export location must stay silent: the
        # facade pulls the makers from repro.workload, not from the shim
        code = ("from repro.serve import poisson_trace, uniform_trace, "
                "offered_load\n"
                "import sys; assert 'repro.serve.trace' not in sys.modules\n")
        env = dict(os.environ, PYTHONPATH=os.path.join(REPO, "src"))
        subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning", "-c", code],
            env=env, check=True, capture_output=True)

    def test_moved_helpers_still_work(self):
        from repro.serve import offered_load, poisson_trace, uniform_trace

        trace = poisson_trace(50, 1000.0, 2.0, rng=0)
        assert len(trace) == 50
        even = uniform_trace(10, 1000.0, 2.0)
        gaps = np.diff([r.arrival_ms for r in even])
        assert np.allclose(gaps, 1.0)
        assert offered_load(even, 2.0) == pytest.approx(2.0)


class TestFluidModel:
    def model(self, **kw):
        # est(b) = 0.5 + 0.1*b ms: one request each 0.6 ms, batching pays
        table = {"r0": [0.5 + 0.1 * b for b in range(1, 9)]}
        defaults = dict(queue_capacity=32, max_batch=8,
                        admission_est_ms=0.6, deadline_ms=10.0)
        defaults.update(kw)
        return FluidModel(table, **defaults)

    def test_light_load_admits_everything(self):
        pred = self.model().solve(ConstantRate(200), 200.0)
        assert pred.admitted_rps == pytest.approx(pred.offered_rps, rel=0.01)
        assert pred.miss_rate < 0.01
        assert pred.rung == "r0"

    def test_overload_caps_at_service_capacity(self):
        pred = self.model().solve(ConstantRate(20000), 200.0)
        assert pred.offered_rps == pytest.approx(20000, rel=0.05)
        # max throughput: batch of 8 in 1.3 ms -> ~6150 rps
        assert pred.admitted_rps < 7000
        assert pred.admitted_rps > 4000
        t = pred.tenants["default"]
        assert t.rejected_rps == pytest.approx(
            t.offered_rps - t.admitted_rps)

    def test_unmeetable_deadline_admits_nothing(self):
        m = self.model(deadline_ms=0.4)   # below est(1) = 0.6
        pred = m.solve(ConstantRate(1000), 100.0)
        assert pred.admitted_rps == 0.0
        m = self.model(deadline_ms=0.4, admission_control=False)
        assert m.solve(ConstantRate(1000), 100.0).admitted_rps > 0

    def test_replicas_split_the_load(self):
        # deadline 2 ms: a full queue costs ~5 ms of wait, so a saturated
        # replica misses while an unsaturated fleet does not
        m = self.model(deadline_ms=2.0)
        one = m.solve(ConstantRate(20000), 200.0, replicas=1)
        four = m.solve(ConstantRate(20000), 200.0, replicas=4)
        assert four.admitted_rps > 3 * one.admitted_rps
        assert one.miss_rate > 0.10
        assert four.miss_rate < one.miss_rate

    def test_miss_probability_tail(self):
        m = self.model(noise_std=0.05, straggler_prob=0.1,
                       straggler_scale=1.0)
        assert m.miss_probability(-1.0, 1.0) == 1.0
        assert m.miss_probability(0.4, 1.0) == 1.0     # under the 0.5 clip
        loose = m.miss_probability(3.0, 1.0)
        tight = m.miss_probability(1.01, 1.0)
        assert 0.0 <= loose < tight <= 1.0
        assert m.mean_factor == pytest.approx(1.05)

    def test_tenant_shares_split_offered_load(self, mix):
        m = self.model(tenants=mix)
        pred = m.solve(ConstantRate(1000), 200.0)
        assert set(pred.tenants) == {"interactive", "batch"}
        assert pred.tenants["interactive"].offered_rps \
            == pytest.approx(300.0, rel=0.05)
        assert pred.tenants["batch"].offered_rps \
            == pytest.approx(700.0, rel=0.05)

    def test_fair_policy_protects_heavy_weight_tenant(self, mix):
        m = self.model(tenants=mix,
                       policy=WeightedFairAdmission(mix, watermark=0.25))
        pred = m.solve(ConstantRate(20000), 200.0)
        inter, batch = pred.tenants["interactive"], pred.tenants["batch"]
        # under 3:1 weights the small tenant keeps all of its demand
        assert inter.admitted_rps / inter.offered_rps \
            > batch.admitted_rps / batch.offered_rps
        assert "miss" in pred.report()

    def test_sweep_and_plan_fleet(self):
        m = self.model(deadline_ms=2.0)
        preds = m.sweep(ConstantRate(30000), 200.0, [1, 4, 16])
        assert sorted(preds) == [1, 4, 16]
        assert preds[16].miss_rate <= preds[1].miss_rate
        n = m.plan_fleet(ConstantRate(30000), 200.0, target_miss_rate=0.01)
        assert n is not None and 1 < n <= 16
        # one fewer replica must fail the target (minimality)
        worse = m.solve(ConstantRate(30000), 200.0, replicas=n - 1)
        assert any(t.miss_rate > 0.01 for t in worse.tenants.values())
        assert m.plan_fleet(ConstantRate(30000), 200.0, 0.01,
                            max_replicas=1) is None

    def test_solve_ladder_covers_every_rung(self):
        tables = {"fast": [0.2 + 0.05 * b for b in range(1, 9)],
                  "slow": [0.8 + 0.2 * b for b in range(1, 9)]}
        m = FluidModel(tables, queue_capacity=32, max_batch=8,
                       admission_est_ms=0.25, deadline_ms=10.0)
        preds = m.solve_ladder(ConstantRate(5000), 200.0)
        assert set(preds) == {"fast", "slow"}
        assert preds["fast"].admitted_rps >= preds["slow"].admitted_rps

    def test_validates_inputs(self):
        with pytest.raises(ValueError, match="latency table"):
            FluidModel({}, queue_capacity=8, max_batch=8,
                       admission_est_ms=0.1, deadline_ms=1.0)
        with pytest.raises(ValueError, match="batch size"):
            FluidModel({"r": [0.1]}, queue_capacity=8, max_batch=8,
                       admission_est_ms=0.1, deadline_ms=1.0)
        m = self.model()
        with pytest.raises(KeyError, match="unknown rung"):
            m.solve(ConstantRate(100), 100.0, rung="r9")
        with pytest.raises(ValueError, match="replicas"):
            m.solve(ConstantRate(100), 100.0, replicas=0)

    def test_from_ladder_matches_config(self, ladder, mix):
        policy = WeightedFairAdmission(mix)
        config = ServerConfig(deadline_ms=4.0, execute=False, seed=0,
                              queue_capacity=16, adaptive=False,
                              admission_policy=policy)
        m = FluidModel.from_ladder(ladder, config, tenants=mix)
        assert set(m.latency_tables) == {r.name for r in ladder.rungs}
        assert m.queue_capacity == 16
        assert m.policy is policy
        # pinned rung -> admission gate uses the current rung's est(1)
        assert m.admission_est_ms \
            == pytest.approx(ladder.current.estimate_ms(1))
