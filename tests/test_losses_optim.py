"""Tests for losses, optimizers and schedules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Parameter
from repro.nn.losses import (
    cross_entropy_from_probs,
    kl_divergence,
    mse,
    softmax_cross_entropy,
)
from repro.nn.optim import SGD, Adam, ConstantLR, StepDecay


def random_dist(rng, n, k):
    y = np.abs(rng.normal(size=(n, k))) + 1e-3
    return (y / y.sum(axis=1, keepdims=True)).astype(np.float64)


class TestSoftmaxCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(4, 5))
        y = random_dist(rng, 4, 5)
        loss, _ = softmax_cross_entropy(logits, y)
        p = np.exp(logits - logits.max(1, keepdims=True))
        p /= p.sum(1, keepdims=True)
        manual = -np.mean(np.sum(y * np.log(p + 1e-12), axis=1))
        assert loss == pytest.approx(manual, rel=1e-6)

    def test_grad_is_p_minus_y(self, rng):
        logits = rng.normal(size=(3, 4))
        y = random_dist(rng, 3, 4)
        _, grad = softmax_cross_entropy(logits, y)
        p = np.exp(logits - logits.max(1, keepdims=True))
        p /= p.sum(1, keepdims=True)
        np.testing.assert_allclose(grad, (p - y) / 3, rtol=1e-6)

    def test_minimum_at_label_entropy(self, rng):
        """Loss at the optimum equals the entropy of the soft labels."""
        y = random_dist(rng, 5, 4)
        logits = np.log(y) * 1.0
        loss, _ = softmax_cross_entropy(logits, y)
        entropy = -np.mean(np.sum(y * np.log(y), axis=1))
        assert loss == pytest.approx(entropy, rel=1e-5)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_grad_rows_sum_to_zero(self, seed):
        r = np.random.default_rng(seed)
        logits = r.normal(size=(3, 5))
        y = random_dist(r, 3, 5)
        _, grad = softmax_cross_entropy(logits, y)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-10)


class TestOtherLosses:
    def test_cross_entropy_from_probs_matches(self, rng):
        y = random_dist(rng, 4, 5)
        p = random_dist(rng, 4, 5)
        loss, _ = cross_entropy_from_probs(p, y)
        manual = -np.mean(np.sum(y * np.log(p + 1e-12), axis=1))
        assert loss == pytest.approx(manual, rel=1e-6)

    def test_kl_zero_for_identical(self, rng):
        y = random_dist(rng, 4, 5)
        loss, _ = kl_divergence(y.copy(), y)
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_kl_positive_otherwise(self, rng):
        y = random_dist(rng, 4, 5)
        p = random_dist(rng, 4, 5)
        loss, _ = kl_divergence(p, y)
        assert loss > 0

    def test_mse_value_and_grad(self):
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        loss, grad = mse(pred, target)
        assert loss == pytest.approx(5.0)
        np.testing.assert_allclose(grad, [[2.0, 4.0]])


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.1)(100) == 0.1

    def test_step_decay(self):
        sched = StepDecay(1.0, every=10, factor=0.5)
        assert sched(0) == 1.0
        assert sched(9) == 1.0
        assert sched(10) == 0.5
        assert sched(25) == 0.25

    def test_step_decay_rejects_bad_every(self):
        with pytest.raises(ValueError):
            StepDecay(1.0, every=0)


def quadratic_param():
    """A parameter minimising f(w) = ||w - 3||^2."""
    return Parameter(np.zeros(4, dtype=np.float32))


def quadratic_grad(p):
    return 2.0 * (p.value - 3.0)


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = SGD(lr=0.1, momentum=0.0)
        for _ in range(100):
            p.grad = quadratic_grad(p)
            opt.step([("w", p)])
        np.testing.assert_allclose(p.value, 3.0, atol=1e-3)

    def test_momentum_accelerates(self):
        plain, mom = quadratic_param(), quadratic_param()
        o1, o2 = SGD(0.02, momentum=0.0), SGD(0.02, momentum=0.9)
        for _ in range(30):
            plain.grad = quadratic_grad(plain)
            mom.grad = quadratic_grad(mom)
            o1.step([("w", plain)])
            o2.step([("w", mom)])
        assert (np.abs(mom.value - 3.0).sum()
                < np.abs(plain.value - 3.0).sum())

    def test_weight_decay_shrinks(self):
        p = Parameter(np.ones(3, dtype=np.float32) * 10)
        opt = SGD(lr=0.1, momentum=0.0, weight_decay=1.0)
        p.grad = np.zeros(3, dtype=np.float32)
        opt.step([("w", p)])
        assert np.all(p.value < 10.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_param()
        opt = Adam(lr=0.2)
        for _ in range(200):
            p.grad = quadratic_grad(p)
            opt.step([("w", p)])
        np.testing.assert_allclose(p.value, 3.0, atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction, the first Adam step is ≈ lr."""
        p = Parameter(np.zeros(1, dtype=np.float32))
        opt = Adam(lr=0.5)
        p.grad = np.array([7.0], dtype=np.float32)
        opt.step([("w", p)])
        assert abs(p.value[0]) == pytest.approx(0.5, rel=1e-3)

    def test_set_lr_switches_phase(self):
        opt = Adam(lr=1e-3)
        opt.set_lr(1e-4)
        assert opt.lr == 1e-4

    def test_state_keyed_by_name_survives_param_subset(self):
        """Freezing some params between steps must not corrupt state."""
        a, b = quadratic_param(), quadratic_param()
        opt = Adam(lr=0.1)
        a.grad = quadratic_grad(a)
        b.grad = quadratic_grad(b)
        opt.step([("a", a), ("b", b)])
        a.grad = quadratic_grad(a)
        opt.step([("a", a)])  # b frozen this step
        b.grad = quadratic_grad(b)
        opt.step([("a", a), ("b", b)])  # no error, state consistent
