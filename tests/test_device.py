"""Tests for the device substrate: fusion, latency model, runtime, profiler."""

import pytest

from repro.device import (
    DeviceSpec,
    fuse_kernels,
    k20m,
    kernel_latency_ms,
    measure_latency,
    network_latency,
    profile_network,
    sample_runs,
    xavier,
)
from repro.nn import BatchNorm, Conv2D, Network, ReLU



class TestFusion:
    def test_conv_bn_relu_fuse(self, tiny_net):
        groups = fuse_kernels(tiny_net)
        by_anchor = {g.anchor: g for g in groups}
        assert set(by_anchor["b1_conv"].node_names) == {
            "b1_conv", "b1_bn", "b1_relu"}

    def test_disabled_fusion_one_node_per_kernel(self, tiny_net):
        groups = fuse_kernels(tiny_net, enabled=False)
        assert all(len(g.node_names) == 1 for g in groups)
        assert len(groups) == len(tiny_net.nodes) - 1  # minus Input

    def test_fusion_blocked_by_branch_consumer(self, tiny_net):
        """b2's relu output also feeds the residual Add; in the tiny net
        b1_relu feeds both b2_conv and b2_add, so b1_relu still fuses with
        b1_conv (single consumer chain check applies to intra-group edges)."""
        groups = fuse_kernels(tiny_net)
        anchors = {g.anchor for g in groups}
        assert "b2_add" in anchors  # Add is its own kernel

    def test_all_nodes_covered_exactly_once(self, tiny_net):
        groups = fuse_kernels(tiny_net)
        names = [n for g in groups for n in g.node_names]
        assert sorted(names) == sorted(n for n in tiny_net.nodes
                                       if n != "input")

    def test_multiconsumer_intermediate_not_fused(self):
        """BN whose output feeds two consumers must not fuse away."""
        net = Network("multi", (4, 4, 2))
        net.add("conv", Conv2D(3, 3))
        net.add("bn", BatchNorm())
        net.add("r1", ReLU(), inputs="bn")
        net.add("c2", Conv2D(3, 1), inputs="bn")
        net.build(0)
        groups = fuse_kernels(net)
        conv_group = next(g for g in groups if g.anchor == "conv")
        assert "r1" not in conv_group.node_names


class TestKernelLatency:
    def test_monotonic_in_flops(self, tiny_device):
        lo = kernel_latency_ms(1e4, 1e3, tiny_device)
        hi = kernel_latency_ms(1e7, 1e3, tiny_device)
        assert hi > lo

    def test_monotonic_in_bytes(self, tiny_device):
        lo = kernel_latency_ms(1e3, 1e4, tiny_device)
        hi = kernel_latency_ms(1e3, 1e7, tiny_device)
        assert hi > lo

    def test_launch_overhead_floor(self, tiny_device):
        t = kernel_latency_ms(1.0, 1.0, tiny_device)
        assert t >= tiny_device.launch_overhead_ms()

    def test_int8_faster(self, tiny_device):
        fp = kernel_latency_ms(1e8, 1e3, tiny_device, "fp32")
        q = kernel_latency_ms(1e8, 1e3, tiny_device, "int8")
        assert q < fp

    def test_unknown_precision_rejected(self, tiny_device):
        with pytest.raises(ValueError):
            kernel_latency_ms(1e3, 1e3, tiny_device, "fp8")

    def test_small_kernels_less_efficient(self, tiny_device):
        """Two small kernels cost more than one kernel of combined size."""
        one = kernel_latency_ms(2e5, 2e3, tiny_device)
        two = 2 * kernel_latency_ms(1e5, 1e3, tiny_device)
        assert two > one


class TestNetworkLatency:
    def test_requires_built_network(self):
        net = Network("unbuilt", (4, 4, 1))
        net.add("c", Conv2D(2, 3))
        with pytest.raises(RuntimeError):
            network_latency(net, xavier())

    def test_total_is_sum_of_kernels(self, tiny_net, tiny_device):
        bd = network_latency(tiny_net, tiny_device)
        assert bd.total_ms == pytest.approx(
            sum(k.latency_ms for k in bd.kernels))

    def test_fusion_reduces_latency(self, tiny_net, tiny_device):
        fused = network_latency(tiny_net, tiny_device, fused=True)
        unfused = network_latency(tiny_net, tiny_device, fused=False)
        assert fused.total_ms < unfused.total_ms

    def test_int8_reduces_latency(self, tiny_net, tiny_device):
        fp = network_latency(tiny_net, tiny_device, precision="fp32")
        q = network_latency(tiny_net, tiny_device, precision="int8")
        assert q.total_ms < fp.total_ms

    def test_deterministic(self, tiny_net, tiny_device):
        a = network_latency(tiny_net, tiny_device).total_ms
        b = network_latency(tiny_net, tiny_device).total_ms
        assert a == b

    def test_trimmed_network_is_faster(self, tiny_net, tiny_device):
        sub = tiny_net.subgraph("b1_relu")
        full = network_latency(tiny_net, tiny_device).total_ms
        cut = network_latency(sub, tiny_device).total_ms
        assert cut < full


class TestRuntimeMeasurement:
    def test_warmup_runs_slower(self, tiny_device, rng):
        runs = sample_runs(1.0, 50, tiny_device, rng, start_run=0)
        later = sample_runs(1.0, 50, tiny_device, rng, start_run=1000)
        assert runs[:5].mean() > later.mean()

    def test_measurement_excludes_warmup(self, tiny_net, tiny_device):
        result = measure_latency(tiny_net, tiny_device, rng=0,
                                 warmup=200, runs=800)
        base = network_latency(tiny_net, tiny_device).total_ms
        assert result.mean_ms == pytest.approx(base, rel=0.02)

    def test_measurement_reproducible_by_default(self, tiny_net, tiny_device):
        a = measure_latency(tiny_net, tiny_device)
        b = measure_latency(tiny_net, tiny_device)
        assert a.mean_ms == b.mean_ms

    def test_protocol_recorded(self, tiny_net, tiny_device):
        result = measure_latency(tiny_net, tiny_device, warmup=100, runs=300)
        assert result.warmup == 100 and result.runs == 300
        assert "ms" in str(result)

    def test_stragglers_increase_tail(self, tiny_net):
        clean = DeviceSpec("clean", 10, 1, 5, 1e4, straggler_prob=0.0,
                           noise_std=0.0, warmup_factor=0.0)
        spiky = DeviceSpec("spiky", 10, 1, 5, 1e4, straggler_prob=0.3,
                           straggler_scale=0.5, noise_std=0.0,
                           warmup_factor=0.0)
        a = measure_latency(tiny_net, clean, rng=1)
        b = measure_latency(tiny_net, spiky, rng=1)
        assert b.mean_ms > a.mean_ms


class TestProfiler:
    def test_recorded_sum_exceeds_end_to_end(self, tiny_net, tiny_device):
        """The paper's observation: per-layer event sums are inflated."""
        table = profile_network(tiny_net, tiny_device)
        assert table.recorded_total_ms > table.end_to_end_ms

    def test_one_record_per_kernel(self, tiny_net, tiny_device):
        table = profile_network(tiny_net, tiny_device)
        assert len(table.records) == len(fuse_kernels(tiny_net))

    def test_recorded_for_nodes_subsets(self, tiny_net, tiny_device):
        table = profile_network(tiny_net, tiny_device)
        all_nodes = {r.anchor for r in table.records}
        assert table.recorded_for_nodes(all_nodes) == pytest.approx(
            table.recorded_total_ms)
        assert table.recorded_for_nodes(set()) == 0.0


class TestDeviceSpecs:
    def test_xavier_orders_the_zoo_like_the_paper(self):
        """MobileNetV1(0.5) meets the 0.9 ms deadline; others do not."""
        from repro.trim import block_boundaries, build_trn
        from repro.zoo import NETWORKS, build_network

        spec = xavier()
        lat = {}
        for name in NETWORKS:
            base = build_network(name).build(0)
            cut = block_boundaries(base)[-1].output_node
            trn = build_trn(base, cut, 5)
            lat[name] = network_latency(trn, spec).total_ms
        assert lat["mobilenet_v1_0.25"] < lat["mobilenet_v1_0.5"] < 0.9
        for slow in ("mobilenet_v2_1.0", "mobilenet_v2_1.4", "resnet50",
                     "densenet121", "inception_v3"):
            assert lat[slow] > 0.9, slow

    def test_k20m_hours_scale_with_flops(self, tiny_net):
        model = k20m()
        sub = tiny_net.subgraph("b1_relu")
        assert model.train_hours(tiny_net) > model.train_hours(sub) > 0

    def test_k20m_full_net_in_plausible_range(self):
        """A full zoo network should retrain in ~0.1-10 simulated hours."""
        from repro.zoo import build_network

        hours = k20m().train_hours(build_network("resnet50").build(0))
        assert 0.1 < hours < 10.0
