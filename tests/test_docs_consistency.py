"""Documentation consistency: the docs reference real code and files."""

import os
import re


REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(name):
    with open(os.path.join(REPO, name)) as fh:
        return fh.read()


class TestReadme:
    def test_example_files_exist(self):
        readme = read("README.md")
        for match in re.findall(r"`([a-z_]+\.py)`", readme):
            assert os.path.exists(os.path.join(REPO, "examples", match)), \
                match

    def test_mentions_all_deliverable_docs(self):
        readme = read("README.md")
        for doc in ("DESIGN.md", "EXPERIMENTS.md"):
            assert doc in readme

    def test_install_commands_valid(self):
        readme = read("README.md")
        assert "pip install -e ." in readme
        assert "pytest benchmarks/ --benchmark-only" in readme


class TestDesign:
    def test_no_title_mismatch_flag(self):
        """DESIGN.md confirms the paper text matched (per the task spec,
        a mismatch would have to be flagged at the top)."""
        design = read("DESIGN.md")
        assert "matches the claimed paper" in design

    def test_benchmark_paths_exist(self):
        design = read("DESIGN.md")
        for match in set(re.findall(r"`(benchmarks/[a-z0-9_]+\.py)`",
                                    design)):
            assert os.path.exists(os.path.join(REPO, match)), match

    def test_module_map_matches_source_tree(self):
        design = read("DESIGN.md")
        for pkg in ("nn", "zoo", "data", "metrics", "device", "trim",
                    "train", "estimators", "netcut", "hand", "extensions"):
            assert f"{pkg}/" in design or f"  {pkg}." in design, pkg
            assert os.path.isdir(os.path.join(REPO, "src", "repro", pkg)), pkg


class TestExperimentsDoc:
    def test_references_result_files_that_benches_emit(self):
        """Every results file EXPERIMENTS.md cites is produced by some
        benchmark (checked against the figures manifest plus ablations)."""
        from repro.figures import EXPERIMENTS

        produced = {f for e in EXPERIMENTS for f in e.results_files}
        produced |= {"ablation_two_phase.txt", "ablation_seed_stability.txt",
                     "ext_device_portability.txt", "ext_safety_margin.txt",
                     "fig07_pareto_frontier.txt"}
        doc = read("EXPERIMENTS.md")
        for match in set(re.findall(r"`([a-z0-9_]+\.txt)`", doc)):
            assert match in produced, match

    def test_headline_table_complete(self):
        doc = read("EXPERIMENTS.md")
        for quantity in ("148", "95%", "27×", "10.43%", "4.28%", "23.81%"):
            assert quantity in doc, quantity


class TestExamplesSmoke:
    def test_every_example_is_smoked(self):
        """scripts/examples_smoke.sh lists every examples/*.py — a demo
        that isn't smoked in CI is a demo that silently rots."""
        script = read(os.path.join("scripts", "examples_smoke.sh"))
        for name in sorted(os.listdir(os.path.join(REPO, "examples"))):
            if name.endswith(".py"):
                assert f"examples/{name}" in script, name

    def test_smoked_examples_exist(self):
        script = read(os.path.join("scripts", "examples_smoke.sh"))
        for match in set(re.findall(r"examples/[a-z_]+\.py", script)):
            assert os.path.exists(os.path.join(REPO, match)), match

    def test_ci_runs_the_smoke(self):
        ci = read(os.path.join(".github", "workflows", "ci.yml"))
        assert "scripts/examples_smoke.sh" in ci


class TestApiDoc:
    def test_documented_imports_work(self):
        """Every `from repro.x import y` line in docs/API.md executes."""
        doc = read(os.path.join("docs", "API.md"))
        imports = re.findall(r"^from (repro[\w.]*) import \(?([\w, \n]+?)\)?$",
                             doc, flags=re.MULTILINE)
        assert imports
        import importlib

        for module, names in imports:
            mod = importlib.import_module(module)
            for name in re.split(r"[,\s]+", names.strip()):
                if name:
                    assert hasattr(mod, name), f"{module}.{name}"
