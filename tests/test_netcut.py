"""Tests for the NetCut algorithm, adapters, explorer and accounting."""

import numpy as np
import pytest

from repro.data import make_hands_dataset
from repro.device.k20m import TrainingCostModel
from repro.netcut import (
    Exploration,
    OracleAdapter,
    ProfilerAdapter,
    TRNRecord,
    compare_costs,
    explore_blockwise,
    run_netcut,
)
from repro.netcut.algorithm import NetCutCandidate, NetCutResult
from repro.trim import build_trn

from conftest import make_tiny_net
from test_train import make_tiny_net32


@pytest.fixture
def cost_model():
    return TrainingCostModel("test", effective_gflops=100.0,
                             scale_factor=100.0, images=1000, epochs=10)


def dummy_retrain(base, cutpoint):
    """A retrain stub: accuracy falls linearly with blocks removed."""
    cut_node = cutpoint.cut_node if cutpoint else "pool"
    trn = build_trn(base, cut_node, 5)
    blocks = cutpoint.blocks_removed if cutpoint else 0
    return trn, 0.9 - 0.1 * blocks


class FixedEstimator:
    """Estimator stub returning scripted latencies."""

    name = "fixed"

    def __init__(self, base_ms, per_block_ms):
        self.base_ms = base_ms
        self.per_block_ms = per_block_ms
        self.calls = 0

    def estimate(self, base, cutpoint):
        self.calls += 1
        if cutpoint is None:
            return self.base_ms
        return self.base_ms - self.per_block_ms * cutpoint.blocks_removed


class TestAlgorithm:
    def test_keeps_original_when_feasible(self, tiny_net):
        result = run_netcut([tiny_net], deadline_ms=10.0,
                            estimator=FixedEstimator(5.0, 1.0),
                            retrain=dummy_retrain)
        cand = result.candidates[0]
        assert cand.cutpoint is None
        assert cand.blocks_removed == 0
        assert cand.accuracy == pytest.approx(0.9)

    def test_cuts_until_deadline_met(self, tiny_net):
        # base 5.0, each block removed saves 1.5 -> need 2 blocks for <=2.5
        result = run_netcut([tiny_net], deadline_ms=2.5,
                            estimator=FixedEstimator(5.0, 1.5),
                            retrain=dummy_retrain)
        cand = result.candidates[0]
        assert cand.blocks_removed == 2
        assert cand.estimated_latency_ms == pytest.approx(2.0)

    def test_infeasible_network_flagged(self, tiny_net):
        result = run_netcut([tiny_net], deadline_ms=0.1,
                            estimator=FixedEstimator(5.0, 0.01),
                            retrain=dummy_retrain)
        cand = result.candidates[0]
        assert not cand.feasible
        assert np.isnan(cand.accuracy)
        with pytest.raises(RuntimeError):
            _ = result.best

    def test_one_retrain_per_network(self, tiny_net):
        calls = []

        def counting_retrain(base, cutpoint):
            calls.append(base.name)
            return dummy_retrain(base, cutpoint)

        nets = [make_tiny_net(f"net{i}") for i in range(3)]
        run_netcut(nets, deadline_ms=2.5,
                   estimator=FixedEstimator(5.0, 1.5),
                   retrain=counting_retrain)
        assert sorted(calls) == ["net0", "net1", "net2"]

    def test_best_picks_highest_accuracy(self):
        nets = [make_tiny_net("a"), make_tiny_net("b")]

        def retrain(base, cutpoint):
            trn = build_trn(base, cutpoint.cut_node if cutpoint else "pool", 5)
            return trn, {"a": 0.5, "b": 0.8}[base.name]

        result = run_netcut(nets, deadline_ms=10.0,
                            estimator=FixedEstimator(1.0, 0.1),
                            retrain=retrain)
        assert result.best.base_name == "b"

    def test_measure_and_cost_hooks(self, tiny_net, cost_model):
        result = run_netcut(
            [tiny_net], deadline_ms=10.0,
            estimator=FixedEstimator(1.0, 0.1), retrain=dummy_retrain,
            measure=lambda trn: 0.42, cost_model=cost_model)
        cand = result.candidates[0]
        assert cand.measured_latency_ms == 0.42
        assert cand.train_hours > 0

    def test_base_latencies_override_estimator(self, tiny_net):
        est = FixedEstimator(99.0, 1.0)  # estimator thinks base is slow
        result = run_netcut([tiny_net], deadline_ms=10.0, estimator=est,
                            retrain=dummy_retrain,
                            base_latencies_ms={tiny_net.name: 5.0})
        assert result.candidates[0].blocks_removed == 0


class TestAdapters:
    def test_oracle_adapter_monotone(self, tiny_net, tiny_device):
        from repro.trim import enumerate_blockwise

        oracle = OracleAdapter(tiny_device)
        cuts = enumerate_blockwise(tiny_net)
        lats = [oracle.estimate(tiny_net, c) for c in cuts]
        assert lats == sorted(lats, reverse=True)
        assert oracle.estimate(tiny_net, None) > lats[0]

    def test_profiler_adapter_builds_one_table_per_base(self, tiny_device):
        from repro.trim import enumerate_blockwise

        adapter = ProfilerAdapter(tiny_device)
        nets = [make_tiny_net("a"), make_tiny_net("b")]
        for net in nets:
            for cut in enumerate_blockwise(net):
                adapter.estimate(net, cut)
        assert adapter.tables_built == 2

    def test_profiler_adapter_close_to_oracle(self, tiny_net, tiny_device):
        from repro.trim import enumerate_blockwise

        adapter = ProfilerAdapter(tiny_device)
        oracle = OracleAdapter(tiny_device)
        for cut in enumerate_blockwise(tiny_net):
            est = adapter.estimate(tiny_net, cut)
            truth = oracle.estimate(tiny_net, cut)
            assert est == pytest.approx(truth, rel=0.15)

    def test_analytical_adapter_requires_base_latency(self, tiny_net):
        from repro.estimators import AnalyticalEstimator
        from repro.netcut import AnalyticalAdapter

        adapter = AnalyticalAdapter(AnalyticalEstimator(), {}, 5)
        with pytest.raises(KeyError):
            adapter.estimate(tiny_net, None)


class TestExplorer:
    @pytest.fixture(scope="class")
    def exploration(self, tmp_path_factory):
        train, test = make_hands_dataset(60, seed=4).split(0.7, rng=0)
        from repro.device.spec import DeviceSpec

        device = DeviceSpec("t", 10, 1, 5, 1e4)
        return explore_blockwise([make_tiny_net32()], train, test, device,
                                 head_epochs=10)

    def test_record_count(self, exploration):
        # 2 blocks + original
        assert exploration.networks_trained == 3

    def test_original_included(self, exploration):
        originals = exploration.originals()
        assert len(originals) == 1
        assert originals[0].blocks_removed == 0

    def test_latency_decreases_with_removal(self, exploration):
        rows = exploration.for_base("tiny32")
        lats = [r.latency_ms for r in rows]
        assert lats == sorted(lats, reverse=True)

    def test_accuracies_above_zero(self, exploration):
        assert all(0.0 < r.accuracy <= 1.0 for r in exploration.records)

    def test_json_roundtrip(self, exploration, tmp_path):
        path = str(tmp_path / "exp.json")
        exploration.save(path)
        loaded = Exploration.load(path)
        assert loaded.records == exploration.records


class TestAccounting:
    def _exploration(self):
        recs = [TRNRecord("a", f"a/{i}", f"c{i}", i, i, 1.0, 0.5, 1.0,
                          8, 100, 10) for i in range(0, 5)]
        return Exploration(recs)

    def _netcut_result(self, names_hours):
        result = NetCutResult(0.9, "stub")
        for name, hours in names_hours:
            result.candidates.append(NetCutCandidate(
                "a", name, None, 0.8, 0.7, train_hours=hours))
        return result

    def test_reduction_and_speedup(self):
        ex = self._exploration()  # 4 trimmed records x 1.0h
        nc = self._netcut_result([("a/1", 0.5)])
        cmp = compare_costs(ex, nc)
        assert cmp.blockwise.networks_trained == 4
        assert cmp.netcut.networks_trained == 1
        assert cmp.network_reduction_pct == pytest.approx(75.0)
        assert cmp.speedup == pytest.approx(4.0 / 0.5)

    def test_duplicate_trns_counted_once(self):
        ex = self._exploration()
        a = self._netcut_result([("a/1", 0.5)])
        b = self._netcut_result([("a/1", 0.5), ("a/2", 0.25)])
        cmp = compare_costs(ex, a, b)
        assert cmp.netcut.networks_trained == 2
        assert cmp.netcut.gpu_hours == pytest.approx(0.75)

    def test_summary_mentions_key_numbers(self):
        cmp = compare_costs(self._exploration(),
                            self._netcut_result([("a/1", 0.5)]))
        text = cmp.summary()
        assert "8.0x" in text and "75%" in text

    def test_zero_netcut_hours_rejected(self):
        cmp = compare_costs(self._exploration(),
                            self._netcut_result([("a/1", 0.0)]))
        with pytest.raises(ValueError):
            _ = cmp.speedup
