"""Tests for the Network DAG: construction, execution, edits, persistence."""

import numpy as np
import pytest

from repro.nn import Add, Conv2D, Dense, GlobalAvgPool, Network, ReLU
from repro.nn.losses import softmax_cross_entropy

from conftest import make_tiny_net


class TestConstruction:
    def test_duplicate_name_rejected(self, tiny_net):
        with pytest.raises(ValueError, match="duplicate"):
            tiny_net.add("b1_conv", ReLU())

    def test_unknown_input_rejected(self):
        net = Network("n", (4, 4, 1))
        with pytest.raises(ValueError, match="unknown node"):
            net.add("a", ReLU(), inputs=["missing"])

    def test_unknown_role_rejected(self):
        net = Network("n", (4, 4, 1))
        with pytest.raises(ValueError, match="role"):
            net.add("a", ReLU(), role="classifier")

    def test_default_input_is_previous_node(self):
        net = Network("n", (4, 4, 1))
        net.add("a", Conv2D(2, 3))
        net.add("b", ReLU())
        assert net.nodes["b"].inputs == ["a"]

    def test_forward_requires_build(self):
        net = Network("n", (4, 4, 1))
        net.add("a", Conv2D(2, 3))
        with pytest.raises(RuntimeError, match="built"):
            net.forward(np.zeros((1, 4, 4, 1), dtype=np.float32))


class TestExecution:
    def test_forward_shape(self, tiny_net, small_images):
        out = tiny_net.forward(small_images)
        assert out.shape == (6, 5)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(6), rtol=1e-5)

    def test_capture_returns_requested_activations(self, tiny_net,
                                                   small_images):
        out, acts = tiny_net.forward(small_images, capture=["b1_relu", "gap"])
        assert set(acts) == {"b1_relu", "gap"}
        assert acts["b1_relu"].shape == (6, 8, 8, 4)
        assert acts["gap"].shape == (6, 4)

    def test_forward_deterministic(self, tiny_net, small_images):
        a = tiny_net.forward(small_images)
        b = tiny_net.forward(small_images)
        np.testing.assert_array_equal(a, b)

    def test_residual_add_receives_both_branches(self, tiny_net,
                                                 small_images):
        out, acts = tiny_net.forward(
            small_images, capture=["b1_relu", "b2_relu", "b2_add"])
        np.testing.assert_allclose(
            acts["b2_add"], acts["b1_relu"] + acts["b2_relu"], rtol=1e-5)

    def test_forward_backward_training_reduces_loss(self, tiny_net,
                                                    small_images,
                                                    soft_labels):
        from repro.nn import Adam

        tiny_net.output_name = "logits"
        optimizer = Adam(5e-3)
        first = None
        for _ in range(30):
            tiny_net.zero_grad()
            _, loss = tiny_net.forward_backward(
                small_images, loss_fn=softmax_cross_entropy, y=soft_labels,
                training=True)
            optimizer.step(tiny_net.parameters())
            first = first if first is not None else loss
        assert loss < first

    def test_forward_backward_needs_loss_or_grad(self, tiny_net,
                                                 small_images):
        with pytest.raises(ValueError):
            tiny_net.forward_backward(small_images)


class TestFreezing:
    def test_freeze_all_blocks_param_iteration(self, tiny_net):
        tiny_net.freeze()
        assert list(tiny_net.parameters()) == []
        assert len(list(tiny_net.parameters(trainable_only=False))) > 0

    def test_freeze_predicate(self, tiny_net):
        tiny_net.freeze(lambda node: node.role != "head")
        names = [name for name, _ in tiny_net.parameters()]
        assert names == ["logits.w", "logits.b"]

    def test_unfreeze_restores(self, tiny_net):
        tiny_net.freeze()
        tiny_net.unfreeze()
        assert len(list(tiny_net.parameters())) > 0


class TestAnalysis:
    def test_total_params_positive_and_consistent(self, tiny_net):
        total = tiny_net.total_params()
        manual = sum(p.size for _, p in tiny_net.parameters(False))
        assert total == manual > 0

    def test_layer_count_counts_weighted_layers(self, tiny_net):
        # stem conv + 3 block convs + head dense
        assert tiny_net.layer_count() == 5
        assert tiny_net.layer_count(roles=("feature",)) == 3

    def test_block_ids_in_order(self, tiny_net):
        assert tiny_net.block_ids() == ["b1", "b2", "b3"]

    def test_describe_contains_nodes(self, tiny_net):
        text = tiny_net.describe()
        assert "b2_add" in text
        assert "total params" in text

    def test_total_flops_matches_sum(self, tiny_net):
        manual = sum(node.layer.flops(tiny_net.in_shapes(node.name))
                     for node in tiny_net.nodes.values())
        assert tiny_net.total_flops() == manual


class TestStructuralEdits:
    def test_copy_is_independent(self, tiny_net, small_images):
        clone = tiny_net.copy()
        before = tiny_net.forward(small_images)
        clone.nodes["logits"].layer.params["w"].value[:] = 0.0
        after = tiny_net.forward(small_images)
        np.testing.assert_array_equal(before, after)

    def test_copy_forward_equal(self, tiny_net, small_images):
        clone = tiny_net.copy()
        np.testing.assert_allclose(clone.forward(small_images),
                                   tiny_net.forward(small_images), rtol=1e-6)

    def test_subgraph_drops_unneeded_nodes(self, tiny_net):
        sub = tiny_net.subgraph("b1_relu")
        assert "b2_conv" not in sub.nodes
        assert "logits" not in sub.nodes
        assert sub.output_name == "b1_relu"

    def test_subgraph_keeps_weights(self, tiny_net, small_images):
        sub = tiny_net.subgraph("b2_add")
        _, acts = tiny_net.forward(small_images, capture=["b2_add"])
        np.testing.assert_allclose(sub.forward(small_images), acts["b2_add"],
                                   rtol=1e-5)

    def test_subgraph_unknown_node(self, tiny_net):
        with pytest.raises(KeyError):
            tiny_net.subgraph("nope")


class TestStateDict:
    def test_roundtrip(self, small_images):
        a = make_tiny_net()
        b = make_tiny_net()
        # different init seeds would be needed for a real difference; force one
        b.nodes["logits"].layer.params["w"].value[:] = 9.0
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b.forward(small_images),
                                   a.forward(small_images), rtol=1e-6)

    def test_includes_running_stats(self, tiny_net, small_images):
        tiny_net.forward(small_images, training=True)
        state = tiny_net.state_dict()
        assert "b1_bn.running_mean" in state

    def test_strict_missing_key_raises(self, tiny_net):
        state = tiny_net.state_dict()
        del state["logits.w"]
        with pytest.raises(KeyError):
            tiny_net.load_state_dict(state)

    def test_non_strict_ignores_missing(self, tiny_net):
        state = tiny_net.state_dict()
        del state["logits.w"]
        tiny_net.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self, tiny_net):
        state = tiny_net.state_dict()
        state["logits.w"] = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="shape"):
            tiny_net.load_state_dict(state)


class TestMemoryManagement:
    def test_activations_freed_during_forward(self):
        """Intermediate activations not in capture should be freed; the
        graph must still produce correct output with branching topology."""
        net = Network("branchy", (4, 4, 2))
        net.add("c1", Conv2D(3, 3))
        net.add("r1", ReLU())
        net.add("c2a", Conv2D(3, 3), inputs="r1")
        net.add("c2b", Conv2D(3, 3), inputs="r1")
        net.add("add", Add(), inputs=["c2a", "c2b"])
        net.add("gap", GlobalAvgPool())
        net.add("fc", Dense(2))
        net.build(0)
        x = np.random.default_rng(0).normal(size=(2, 4, 4, 2)).astype(np.float32)
        assert net.forward(x).shape == (2, 2)
