"""Tests for the latency estimators: SVR, OLS, features, profiler, analytical."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.profiler import profile_network
from repro.estimators import (
    SVR,
    AnalyticalEstimator,
    LinearRegression,
    NetworkFeatures,
    ProfilerEstimator,
    cross_val_error,
    extract_features,
    grid_search,
    kfold_indices,
    random_search,
    rbf_kernel,
    relative_error,
    train_test_split_indices,
)
from repro.trim import removed_node_set


class TestRBFKernel:
    def test_diagonal_is_one(self, rng):
        x = rng.normal(size=(5, 3))
        k = rbf_kernel(x, x, gamma=0.5)
        np.testing.assert_allclose(np.diag(k), 1.0, rtol=1e-9)

    def test_symmetric_psd(self, rng):
        x = rng.normal(size=(10, 3))
        k = rbf_kernel(x, x, gamma=0.2)
        np.testing.assert_allclose(k, k.T, rtol=1e-9)
        eigs = np.linalg.eigvalsh(k)
        assert eigs.min() > -1e-8

    def test_decays_with_distance(self):
        a = np.array([[0.0]])
        assert (rbf_kernel(a, np.array([[1.0]]), 1.0)
                > rbf_kernel(a, np.array([[3.0]]), 1.0))


class TestSVR:
    def test_interpolates_smooth_function(self, rng):
        x = np.linspace(0, 1, 30)[:, None]
        y = 1.0 + np.sin(3 * x[:, 0])
        model = SVR(c=1e4, gamma=2.0, epsilon=1e-4).fit(x, y)
        pred = model.predict(x)
        assert relative_error(pred, y) < 2.0

    def test_beats_linear_on_nonlinear_target(self, rng):
        x = rng.uniform(0, 1, size=(50, 3))
        y = 1.0 + x[:, 0] ** 2 + np.sin(4 * x[:, 1])
        xt = rng.uniform(0, 1, size=(80, 3))
        yt = 1.0 + xt[:, 0] ** 2 + np.sin(4 * xt[:, 1])
        svr_err = relative_error(SVR(c=1e4, gamma=1.0).fit(x, y).predict(xt), yt)
        lin_err = relative_error(LinearRegression().fit(x, y).predict(xt), yt)
        assert svr_err < lin_err

    def test_epsilon_tube_limits_support_vectors(self, rng):
        x = np.linspace(0, 1, 40)[:, None]
        y = 2.0 + 0.1 * x[:, 0]
        wide = SVR(c=100, gamma=1.0, epsilon=0.5).fit(x, y)
        narrow = SVR(c=100, gamma=1.0, epsilon=1e-5).fit(x, y)
        assert wide.support_count < narrow.support_count

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SVR().predict(np.zeros((1, 2)))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            SVR().fit(np.zeros(5), np.zeros(5))

    def test_rejects_unknown_kernel(self):
        with pytest.raises(ValueError):
            SVR(kernel="poly")

    def test_linear_kernel_fits_affine(self, rng):
        x = rng.normal(size=(30, 2))
        y = 5.0 + 2 * x[:, 0] - x[:, 1]
        model = SVR(c=1e4, kernel="linear", epsilon=1e-4).fit(x, y)
        assert relative_error(model.predict(x), y) < 3.0

    @given(seed=st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_constant_target_recovered(self, seed):
        r = np.random.default_rng(seed)
        x = r.normal(size=(15, 2))
        y = np.full(15, 4.2)
        model = SVR(c=100, gamma=0.5, epsilon=1e-3).fit(x, y)
        np.testing.assert_allclose(model.predict(x), 4.2, rtol=0.05)


class TestModelSelection:
    def test_kfold_partitions(self):
        pairs = kfold_indices(25, 5, rng=0)
        assert len(pairs) == 5
        all_val = np.concatenate([v for _, v in pairs])
        assert sorted(all_val.tolist()) == list(range(25))
        for train, val in pairs:
            assert not set(train) & set(val)

    def test_kfold_bad_k(self):
        with pytest.raises(ValueError):
            kfold_indices(5, 6)

    def test_cross_val_error_reasonable(self, rng):
        x = rng.normal(size=(40, 2))
        y = 3.0 + x[:, 0]
        err = cross_val_error(lambda: LinearRegression(), x, y, k=5)
        assert err < 5.0

    def test_grid_search_finds_better_gamma(self, rng):
        x = rng.uniform(0, 1, size=(40, 2))
        y = 1.0 + np.sin(6 * x[:, 0])
        result = grid_search(
            lambda gamma, c: SVR(c=c, gamma=gamma),
            {"gamma": [1e-3, 1.0], "c": [100.0]}, x, y, k=5)
        assert result.best_params["gamma"] == 1.0
        assert len(result.table) == 2

    def test_random_search_samples_in_range(self, rng):
        x = rng.uniform(0, 1, size=(30, 2))
        y = 1.0 + x[:, 0]
        result = random_search(
            lambda gamma, c: SVR(c=c, gamma=gamma),
            {"gamma": (1e-3, 10.0), "c": (1.0, 1e4)}, x, y,
            n_samples=4, k=3)
        assert len(result.table) == 4
        for params, _ in result.table:
            assert 1e-3 <= params["gamma"] <= 10.0

    def test_relative_error_zero_for_exact(self):
        assert relative_error(np.ones(5), np.ones(5)) == 0.0

    def test_train_test_split_paper_protocol(self):
        train, test = train_test_split_indices(148, 0.2, rng=0)
        assert len(train) == 30  # ~20%
        assert len(train) + len(test) == 148
        assert not set(train.tolist()) & set(test.tolist())


class TestFeatures:
    def test_extraction(self, tiny_net):
        feats = extract_features(tiny_net, base_latency_ms=1.5)
        assert feats.base_latency_ms == 1.5
        assert feats.total_flops == tiny_net.total_flops()
        assert feats.total_params == tiny_net.total_params()
        assert feats.weighted_layers == 5
        arr = feats.as_array()
        assert arr.shape == (5,)
        assert arr[0] == 1.5

    def test_filter_size_grows_with_width(self, tiny_net):
        from conftest import make_tiny_net

        wide = make_tiny_net("wide")
        for node in wide.nodes.values():
            pass  # structure identical; compare against a trimmed subgraph
        sub = tiny_net.subgraph("b1_relu")
        f_full = extract_features(tiny_net, 1.0)
        f_sub = extract_features(sub, 1.0)
        assert f_sub.total_filter_size < f_full.total_filter_size
        assert f_sub.weighted_layers < f_full.weighted_layers


class TestProfilerEstimator:
    def test_full_network_estimate_is_end_to_end(self, tiny_net, tiny_device):
        table = profile_network(tiny_net, tiny_device)
        est = ProfilerEstimator(tiny_net, table)
        assert est.estimate(set()) == pytest.approx(table.end_to_end_ms)

    def test_estimate_decreases_with_removal(self, tiny_net, tiny_device):
        table = profile_network(tiny_net, tiny_device)
        est = ProfilerEstimator(tiny_net, table)
        shallow = est.estimate(removed_node_set(tiny_net, "b2_add"))
        deep = est.estimate(removed_node_set(tiny_net, "b1_relu"))
        assert deep < shallow < table.end_to_end_ms

    def test_ratio_beats_raw_difference(self, tiny_net, tiny_device):
        """The paper's rationale: raw subtraction inherits event overhead."""
        from repro.device.latency import network_latency
        from repro.trim import build_trn

        table = profile_network(tiny_net, tiny_device)
        est = ProfilerEstimator(tiny_net, table)
        removed = removed_node_set(tiny_net, "b2_add")
        trn = build_trn(tiny_net, "b2_add", 5)
        # compare against the noise-free model of the trimmed *feature*
        # extractor; ratio should be closer than the raw difference
        truth = network_latency(tiny_net.subgraph("b2_add"),
                                tiny_device).total_ms
        ratio_err = abs(est.estimate(removed) - truth)
        raw_err = abs(est.estimate_raw_difference(removed) - truth)
        assert ratio_err < raw_err

    def test_wrong_network_rejected(self, tiny_net, tiny_device):
        from conftest import make_tiny_net

        table = profile_network(tiny_net, tiny_device)
        other = make_tiny_net("other")
        with pytest.raises(ValueError):
            ProfilerEstimator(other, table)


class TestAnalyticalEstimator:
    def _fake_features(self, rng, n=30):
        feats = []
        lat = []
        for i in range(n):
            flops = float(rng.uniform(1e5, 1e7))
            layers = int(rng.integers(5, 50))
            feats.append(NetworkFeatures(
                f"net{i}", base_latency_ms=2.0, total_flops=int(flops),
                total_params=int(flops / 10), weighted_layers=layers,
                total_filter_size=layers * 100))
            lat.append(0.1 + 4e-8 * flops + 0.01 * layers
                       + 0.2 * np.sin(flops / 2e6))
        return feats, np.array(lat)

    def test_fit_predict(self, rng):
        feats, lat = self._fake_features(rng)
        model = AnalyticalEstimator(gamma=0.5, c=1e4).fit(feats, lat)
        pred = model.predict(feats)
        assert relative_error(pred, lat) < 10.0

    def test_predict_one(self, rng):
        feats, lat = self._fake_features(rng)
        model = AnalyticalEstimator(gamma=0.5, c=1e4).fit(feats, lat)
        assert isinstance(model.predict_one(feats[0]), float)

    def test_unfitted_raises(self, rng):
        feats, _ = self._fake_features(rng, 3)
        with pytest.raises(RuntimeError):
            AnalyticalEstimator().predict(feats)

    def test_tune_selects_hyperparameters(self, rng):
        feats, lat = self._fake_features(rng, 25)
        model = AnalyticalEstimator()
        model.tune(feats, lat, gammas=(0.01, 1.0), cs=(100.0,), folds=5)
        assert model.search_result is not None
        assert model.gamma in (0.01, 1.0)

    def test_linear_baseline_mode(self, rng):
        feats, lat = self._fake_features(rng)
        model = AnalyticalEstimator(kernel="linear-ols").fit(feats, lat)
        assert np.isfinite(model.predict(feats)).all()
