"""Tests for the related-work extensions: BranchyNet and NetAdapt."""

import numpy as np
import pytest

from repro.data import make_hands_dataset
from repro.device.latency import network_latency
from repro.extensions import NetAdaptConfig, build_branchy, run_netadapt
from repro.extensions.branchynet import BranchyNetwork
from repro.extensions.netadapt import prune_output_channels
from repro.zoo import build_mobilenet_v1

from test_train import make_tiny_net32


@pytest.fixture(scope="module")
def hands():
    return make_hands_dataset(80, seed=5).split(0.75, rng=0)


@pytest.fixture(scope="module")
def tiny32():
    return make_tiny_net32()


class TestBranchyNetwork:
    @pytest.fixture(scope="class")
    def branchy(self, tiny32, tiny_device_cls, hands):
        train, _ = hands
        return build_branchy(tiny32, tiny_device_cls, train.x, train.y,
                             exit_blocks=[0, 1], head_epochs=10)

    @pytest.fixture(scope="class")
    def tiny_device_cls(self):
        from repro.device.spec import DeviceSpec

        return DeviceSpec("t", 10, 1, 5, 1e4)

    def test_exit_count_and_latency_ordering(self, branchy):
        assert len(branchy.exits) == 2
        # later exits cost more
        assert (branchy.exits[0].exit_latency_ms
                < branchy.exits[1].exit_latency_ms)

    def test_route_partitions_samples(self, branchy, hands):
        _, test = hands
        preds, chosen = branchy.route(test.x, entropy_threshold=1.55)
        assert preds.shape == (len(test), 5)
        assert set(np.unique(chosen)) <= {0, 1}
        np.testing.assert_allclose(preds.sum(axis=1), 1.0, rtol=1e-4)

    def test_zero_threshold_uses_last_exit(self, branchy, hands):
        _, test = hands
        _, chosen = branchy.route(test.x, entropy_threshold=0.0)
        assert (chosen == 1).all()

    def test_huge_threshold_uses_first_exit(self, branchy, hands):
        _, test = hands
        _, chosen = branchy.route(test.x, entropy_threshold=100.0)
        assert (chosen == 0).all()

    def test_latency_monotone_in_threshold(self, branchy, hands):
        _, test = hands
        curve = branchy.tradeoff_curve(test.x, test.y,
                                       np.array([0.0, 1.55, 100.0]))
        lats = [row[2] for row in curve]
        assert lats[0] >= lats[1] >= lats[2]

    def test_empty_exits_rejected(self, tiny32):
        with pytest.raises(ValueError):
            BranchyNetwork(tiny32, [])

    def test_exit_latency_is_trn_latency(self, branchy, tiny32,
                                         tiny_device_cls):
        """prefix + head latency must equal the matching TRN's latency."""
        from repro.trim import build_trn

        for e in branchy.exits:
            trn = build_trn(tiny32, e.node, 5)
            expected = network_latency(trn, tiny_device_cls).total_ms
            assert e.exit_latency_ms == pytest.approx(expected, rel=1e-6)


class TestPruneSurgery:
    @pytest.fixture
    def mnv1(self):
        return build_mobilenet_v1(0.5, input_shape=(16, 16, 3),
                                  num_classes=5).build(0)

    def test_prune_propagates_shapes(self, mnv1):
        conv = mnv1.nodes["block3_pw_conv"].layer
        keep = np.arange(conv.filters - 4)
        prune_output_channels(mnv1, "block3_pw_conv", keep)
        assert mnv1.shape_of("block3_pw_relu")[-1] == len(keep)
        x = np.random.default_rng(0).normal(size=(2, 16, 16, 3)).astype(
            np.float32)
        out = mnv1.forward(x)
        assert out.shape == (2, 5)
        np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-4)

    def test_prune_last_block_reaches_dense_head(self, mnv1):
        conv = mnv1.nodes["block13_pw_conv"].layer
        keep = np.arange(conv.filters // 2)
        prune_output_channels(mnv1, "block13_pw_conv", keep)
        assert mnv1.nodes["logits"].layer.params["w"].value.shape[0] == \
            len(keep)
        x = np.random.default_rng(0).normal(size=(1, 16, 16, 3)).astype(
            np.float32)
        assert mnv1.forward(x).shape == (1, 5)

    def test_identity_keep_preserves_outputs(self, mnv1):
        x = np.random.default_rng(1).normal(size=(2, 16, 16, 3)).astype(
            np.float32)
        before = mnv1.forward(x)
        conv = mnv1.nodes["block5_pw_conv"].layer
        prune_output_channels(mnv1, "block5_pw_conv",
                              np.arange(conv.filters))
        np.testing.assert_allclose(mnv1.forward(x), before, rtol=1e-5)

    def test_prune_reduces_latency(self, mnv1, tiny_device):
        before = network_latency(mnv1, tiny_device).total_ms
        conv = mnv1.nodes["block13_pw_conv"].layer
        prune_output_channels(mnv1, "block13_pw_conv",
                              np.arange(4))
        after = network_latency(mnv1, tiny_device).total_ms
        assert after < before

    def test_rejects_non_conv(self, mnv1):
        with pytest.raises(ValueError):
            prune_output_channels(mnv1, "block3_pw_bn", np.arange(2))

    def test_rejects_empty_keep(self, mnv1):
        with pytest.raises(ValueError):
            prune_output_channels(mnv1, "block3_pw_conv", np.array([]))

    def test_rejects_branching_topology(self, tiny32):
        # tiny32's b1_relu feeds both b2_conv and the residual add
        with pytest.raises(ValueError, match="chain"):
            prune_output_channels(tiny32.copy(), "b1_conv", np.arange(2))


class TestRunNetAdapt:
    @pytest.fixture(scope="class")
    def setup(self, hands):
        from repro.device.spec import DeviceSpec
        from repro.trim import block_boundaries, build_trn

        device = DeviceSpec("t", 10, 1, 5, 1e4, weight_cache_factor=0.1)
        base = build_mobilenet_v1(0.5, input_shape=(16, 16, 3),
                                  num_classes=20)
        base.build(0)
        cut0 = block_boundaries(base)[-1].output_node
        trn = build_trn(base, cut0, 5)
        return trn, device, hands

    def test_reaches_budget(self, setup):
        trn, device, (train, test) = setup
        start = network_latency(trn, device).total_ms
        budget = start * 0.9
        result = run_netadapt(trn, budget, device, train.x, train.y,
                              test.x, test.y,
                              NetAdaptConfig(step_ms=start * 0.04,
                                             head_epochs_short=4,
                                             head_epochs_final=6))
        assert result.latency_ms <= budget
        assert result.history
        assert result.candidates_trained >= len(result.history)
        assert 0 < result.accuracy <= 1

    def test_original_untouched(self, setup):
        trn, device, (train, test) = setup
        before = trn.total_params()
        start = network_latency(trn, device).total_ms
        run_netadapt(trn, start * 0.95, device, train.x, train.y,
                     test.x, test.y,
                     NetAdaptConfig(step_ms=start * 0.04,
                                    head_epochs_short=3,
                                    head_epochs_final=3))
        assert trn.total_params() == before

    def test_impossible_budget_raises(self, setup):
        trn, device, (train, test) = setup
        with pytest.raises(RuntimeError):
            run_netadapt(trn, 1e-6, device, train.x, train.y, test.x,
                         test.y,
                         NetAdaptConfig(step_ms=0.01, head_epochs_short=2,
                                        head_epochs_final=2))
