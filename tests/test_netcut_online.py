"""Online NetCut: re-estimation fits, greedy re-selection, loop closure."""

from __future__ import annotations

import math

import pytest

from conftest import make_tiny_net
from repro.faults import FaultInjector, ThermalThrottle
from repro.netcut.online import (
    OnlineFit,
    ReestimationController,
    fit_scales,
    select_rung,
)
from repro.obs import DriftMonitor
from repro.serve import Server, ServerConfig, TRNLadder, poisson_trace


# -- lightweight protocol stubs (the module is duck-typed on purpose) --------

class StubRung:
    def __init__(self, name: str, base_ms: float):
        self.name = name
        self.base_ms = base_ms
        self.estimate_scale = 1.0

    def estimate_ms(self, batch_size: int = 1) -> float:
        return self.base_ms * self.estimate_scale

    def recalibrate(self, scale: float) -> float:
        previous = self.estimate_scale
        self.estimate_scale = float(scale)
        return previous


class StubLadder:
    def __init__(self, rungs):
        self.rungs = sorted(rungs, key=lambda r: -r.estimate_ms(1))
        self._current = 0

    @property
    def current(self):
        return self.rungs[self._current]

    @property
    def fastest(self):
        return self.rungs[-1]

    def select(self, rung):
        self._current = next(
            i for i, r in enumerate(self.rungs) if r is rung)

    def resort(self):
        serving = self.rungs[self._current]
        self.rungs.sort(key=lambda r: -r.estimate_ms(1))
        self.select(serving)


def make_stub_ladder():
    return StubLadder([StubRung("deep", 4.0), StubRung("mid", 2.0),
                       StubRung("shallow", 1.0)])


# -- fit_scales --------------------------------------------------------------

class TestFitScales:
    def test_ratio_takes_per_rung_median(self):
        samples = {"a": [(1, 1.0, 2.0), (1, 1.0, 2.2), (1, 1.0, 1.8)]}
        scales = fit_scales(samples, {"a": 1.0})
        assert scales["a"] == pytest.approx(2.0)

    def test_multiplies_the_current_belief(self):
        # predicted already includes the current scale, so the fit's
        # ratio composes with it rather than replacing it
        samples = {"a": [(1, 3.0, 6.0)]}
        scales = fit_scales(samples, {"a": 1.5})
        assert scales["a"] == pytest.approx(3.0)

    def test_unserved_rung_gets_pooled_fallback(self):
        # thermal throttling slows every rung; a rung that never served
        # during the window still inherits the pooled evidence
        samples = {"a": [(1, 1.0, 3.0)], "b": [(1, 2.0, 6.0)]}
        scales = fit_scales(samples, {"a": 1.0, "b": 1.0, "idle": 1.0})
        assert scales["idle"] == pytest.approx(3.0)

    def test_median_is_robust_to_straggler_tail(self):
        samples = {"a": [(1, 1.0, 1.0), (1, 1.0, 1.1),
                         (1, 1.0, 0.9), (1, 1.0, 50.0)]}
        scales = fit_scales(samples, {"a": 1.0})
        assert scales["a"] < 2.0

    def test_scales_are_clamped(self):
        up = fit_scales({"a": [(1, 1.0, 1e6)]}, {"a": 1.0})
        down = fit_scales({"a": [(1, 1.0, 1e-6)]}, {"a": 1.0})
        assert up["a"] == 20.0
        assert down["a"] == 0.05

    def test_degenerate_observations_are_ignored(self):
        samples = {"a": [(1, 0.0, 1.0), (1, -1.0, 1.0),
                         (1, float("nan"), 1.0), (1, 1.0, float("inf")),
                         (1, 1.0, 2.0)]}
        scales = fit_scales(samples, {"a": 1.0})
        assert scales["a"] == pytest.approx(2.0)

    def test_no_usable_samples_returns_current(self):
        current = {"a": 1.3, "b": 0.7}
        assert fit_scales({}, current) == current
        assert fit_scales({"a": [(1, 0.0, 1.0)]}, current) == current

    def test_unknown_method_raises(self):
        with pytest.raises(ValueError):
            fit_scales({}, {"a": 1.0}, method="lstsq")

    def test_svr_tracks_a_uniform_slowdown(self):
        samples = {
            "a": [(1, 1.0, 2.5), (1, 1.1, 2.7), (1, 0.9, 2.3)],
            "b": [(1, 2.0, 5.0), (1, 2.1, 5.2), (1, 1.9, 4.9)],
        }
        scales = fit_scales(samples, {"a": 1.0, "b": 1.0, "idle": 1.0},
                            method="svr")
        # every rung observed ~2.5x; the pooled SVR should land near it
        assert scales["a"] == pytest.approx(2.5, rel=0.25)
        assert scales["b"] == pytest.approx(2.5, rel=0.25)
        # the idle rung falls back to the pooled median ratio
        assert scales["idle"] == pytest.approx(2.5, rel=0.05)

    def test_svr_with_few_points_falls_back_to_ratio(self):
        samples = {"a": [(1, 1.0, 2.0)]}
        scales = fit_scales(samples, {"a": 1.0}, method="svr")
        assert scales["a"] == pytest.approx(2.0)


# -- select_rung -------------------------------------------------------------

class TestSelectRung:
    def test_picks_deepest_fitting_rung(self):
        ladder = make_stub_ladder()
        assert select_rung(ladder, 5.0).name == "deep"
        assert select_rung(ladder, 2.5).name == "mid"
        assert select_rung(ladder, 1.0).name == "shallow"

    def test_falls_back_to_fastest(self):
        ladder = make_stub_ladder()
        assert select_rung(ladder, 0.01).name == "shallow"

    def test_margin_shrinks_the_budget(self):
        ladder = make_stub_ladder()
        assert select_rung(ladder, 5.0, margin=0.5).name == "mid"

    def test_reads_calibrated_estimates(self):
        ladder = make_stub_ladder()
        for rung in ladder.rungs:
            rung.recalibrate(3.0)
        ladder.resort()
        assert select_rung(ladder, 5.0).name == "shallow"


# -- ReestimationController --------------------------------------------------

class TestReestimationController:
    def make(self, **kw):
        kw.setdefault("cooldown_ms", 0.0)
        kw.setdefault("min_samples", 1)
        kw.setdefault("min_rel_change", 0.0)
        return ReestimationController(2.5, **kw)

    def feed(self, ctrl, ladder, ratio=3.0, n=8):
        for rung in ladder.rungs:
            for _ in range(n):
                est = rung.estimate_ms(1)
                ctrl.record(rung.name, 1, est, ratio * est)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ReestimationController(0.0)
        with pytest.raises(ValueError):
            ReestimationController(1.0, method="magic")

    def test_applied_fit_rewrites_rebuilds_and_clears(self):
        ladder = make_stub_ladder()
        ctrl = self.make()
        self.feed(ctrl, ladder, ratio=3.0)
        fit = ctrl.maybe_reestimate(ladder, object(), now_ms=100.0)
        assert isinstance(fit, OnlineFit)
        assert all(r.estimate_scale == pytest.approx(3.0)
                   for r in ladder.rungs)
        # deep is now 12 ms, mid 6 ms: only shallow (3 ms) fits 2.5 ms?
        # no — nothing fits, greedy falls back to the fastest rung
        assert fit.rebuilt and fit.to_rung == "shallow"
        assert ladder.current.name == "shallow"
        assert ctrl.counters["reestimates"] == 1
        assert ctrl.counters["rebuilds"] == 1
        # buffers cleared: successive fits must not compound the same
        # evidence (predicted already includes the applied scale)
        assert ctrl.snapshot()["pending_samples"] == 0

    def test_cooldown_gate(self):
        ladder = make_stub_ladder()
        ctrl = self.make(cooldown_ms=50.0)
        self.feed(ctrl, ladder)
        assert ctrl.maybe_reestimate(ladder, None, 10.0) is not None
        self.feed(ctrl, ladder)
        assert ctrl.maybe_reestimate(ladder, None, 40.0) is None
        assert ctrl.counters["skipped_cooldown"] == 1
        assert ctrl.maybe_reestimate(ladder, None, 60.0) is not None

    def test_min_samples_gate(self):
        ladder = make_stub_ladder()
        ctrl = self.make(min_samples=5)
        ctrl.record("deep", 1, 4.0, 12.0)
        assert ctrl.maybe_reestimate(ladder, None, 1.0) is None
        assert ctrl.counters["skipped_samples"] == 1

    def test_min_change_gate_discards_noise(self):
        ladder = make_stub_ladder()
        ctrl = self.make(min_rel_change=0.05)
        self.feed(ctrl, ladder, ratio=1.01)
        assert ctrl.maybe_reestimate(ladder, None, 1.0) is None
        assert ctrl.counters["skipped_minor"] == 1
        assert all(r.estimate_scale == 1.0 for r in ladder.rungs)
        # the evidence is kept: a later, larger drift can still use it
        assert ctrl.snapshot()["pending_samples"] > 0

    def test_record_skips_degenerate(self):
        ctrl = self.make()
        for pred, obs in [(0.0, 1.0), (-1.0, 1.0), (1.0, 0.0),
                          (float("nan"), 1.0), (1.0, math.inf)]:
            ctrl.record("a", 1, pred, obs)
        assert ctrl.snapshot()["pending_samples"] == 0

    def test_recovery_fit_steps_back_up(self):
        ladder = make_stub_ladder()
        ctrl = self.make()
        self.feed(ctrl, ladder, ratio=3.0)
        ctrl.maybe_reestimate(ladder, None, 1.0)
        assert ladder.current.name == "shallow"
        # device cools down: observations return to the *profiled* times,
        # i.e. 1/3 of the current (scaled) predictions
        self.feed(ctrl, ladder, ratio=1.0 / 3.0)
        fit = ctrl.maybe_reestimate(ladder, None, 2.0)
        assert fit is not None and fit.rebuilt
        # back to the deepest rung that fits 2.5 ms at scale 1 (mid, 2 ms
        # — deep at 4 ms never fit the deadline to begin with)
        assert ladder.current.name == "mid"
        assert all(r.estimate_scale == pytest.approx(1.0)
                   for r in ladder.rungs)

    def test_report_mentions_fits(self):
        ladder = make_stub_ladder()
        ctrl = self.make()
        self.feed(ctrl, ladder)
        ctrl.maybe_reestimate(ladder, None, 1.0)
        text = ctrl.report()
        assert "re-estimations" in text and "->" in text


# -- engine integration ------------------------------------------------------

# 2x: slow enough that the profiled-optimal rung blows the deadline, mild
# enough that the tiny ladder's fastest rung still fits under throttle
THROTTLE = 2.0


@pytest.fixture
def ladder(tiny_device):
    return TRNLadder.from_base(make_tiny_net(blocks=4), tiny_device,
                               num_classes=5)


def make_closed_loop(ladder, **overrides):
    full = ladder.rungs[0].estimate_ms(1)
    config = ServerConfig(
        deadline_ms=round(1.5 * full, 4), max_batch=1,
        admission_control=False, adaptive=False, execute=False,
        online_reestimation=True, reestimate_cooldown_ms=2.0 * full,
        reestimate_min_samples=6, reestimate_max_samples=12, seed=0,
        **overrides)
    trace = poisson_trace(400, rate_rps=0.5e3 / full, deadline_ms=(
        config.deadline_ms), rng=0, render=False)
    span = trace[-1].arrival_ms
    faults = FaultInjector([ThermalThrottle(
        start_ms=0.05 * span, duration_ms=10 * span, factor=THROTTLE,
        ramp_ms=0.01 * span)], seed=0)
    drift = DriftMonitor(threshold=0.2, window=12, min_observations=6,
                         cooldown=6)
    server = Server(ladder, config, drift=drift, faults=faults)
    return server, trace, drift


class TestEngineIntegration:
    def test_default_config_leaves_loop_open(self, ladder):
        from repro.serve.engine import Engine
        from repro.serve.metrics import ServerMetrics
        config = ServerConfig()
        engine = Engine(ladder, config, ServerMetrics(config.deadline_ms))
        assert engine.reestimator is None

    def test_closed_loop_reestimates_and_recovers(self, ladder):
        server, trace, drift = make_closed_loop(ladder)
        result = server.run_trace(trace)
        snap = result.metrics.snapshot()
        assert snap["counters"]["reestimates"] > 0
        assert snap["counters"]["ladder_rebuilds"] > 0
        # the refit converged on the throttle's slowdown
        scales = [r.estimate_scale for r in server.ladder.rungs]
        assert max(scales) == pytest.approx(THROTTLE, rel=0.3)
        # and the ladder stepped down off the profiled-optimal rung
        assert result.final_rung != server.ladder.rungs[0].name

    def test_static_arm_misses_more(self, ladder):
        server, trace, _ = make_closed_loop(ladder)
        closed = server.run_trace(trace)
        static = server.run_trace(trace, online_reestimation=False)
        assert closed.metrics.miss_rate < static.metrics.miss_rate

    def test_fresh_engine_resets_calibration(self, ladder):
        server, trace, _ = make_closed_loop(ladder)
        first = server.run_trace(trace)
        assert any(r.estimate_scale != 1.0 for r in server.ladder.rungs)
        # the mutated ladder must not leak beliefs into the next run:
        # an identical replay produces identical metrics
        second = server.run_trace(trace)
        assert second.metrics.snapshot() == first.metrics.snapshot()

    def test_faulted_rung_delegates_calibration(self, ladder):
        injector = FaultInjector([], seed=0)
        wrapped = injector.wrap(ladder)
        proxy, real = wrapped.rungs[0], ladder.rungs[0]
        assert proxy.estimate_scale == 1.0
        proxy.recalibrate(2.0)
        assert real.estimate_scale == 2.0
        assert proxy.estimate_ms(1) == pytest.approx(real.estimate_ms(1))
        assert proxy.estimate_table() == real.estimate_table()
        real.recalibrate(1.0)

    def test_loop_needs_no_explicit_drift_monitor(self, ladder):
        # the engine provisions a default DriftMonitor when the loop is
        # closed without one
        from repro.serve.engine import Engine
        from repro.serve.metrics import ServerMetrics
        config = ServerConfig(online_reestimation=True)
        engine = Engine(ladder, config, ServerMetrics(config.deadline_ms))
        assert engine.drift is not None
        assert engine.reestimator is not None
