"""Unit tests for layer forward semantics, shapes, FLOPs and parameters."""

import numpy as np
import pytest

from repro.nn import (
    Add,
    AvgPool2D,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU6,
    Softmax,
)


def build(layer, in_shapes, seed=0):
    layer.build(in_shapes, np.random.default_rng(seed))
    return layer


class TestConv2D:
    def test_output_shape_same(self, rng):
        conv = build(Conv2D(8, 3, stride=2, padding="same"), [(9, 9, 3)])
        x = rng.normal(size=(2, 9, 9, 3)).astype(np.float32)
        out = conv.forward([x])
        assert out.shape == (2, 5, 5, 8)
        assert conv.out_shape([(9, 9, 3)]) == (5, 5, 8)

    def test_output_shape_valid(self, rng):
        conv = build(Conv2D(4, 3, stride=1, padding="valid"), [(8, 8, 2)])
        out = conv.forward([rng.normal(size=(1, 8, 8, 2)).astype(np.float32)])
        assert out.shape == (1, 6, 6, 4)

    def test_identity_kernel(self):
        conv = build(Conv2D(1, 1, use_bias=False), [(4, 4, 1)])
        conv.params["w"].value = np.ones((1, 1, 1, 1), dtype=np.float32)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        np.testing.assert_allclose(conv.forward([x]), x)

    def test_bias_added(self, rng):
        conv = build(Conv2D(2, 1), [(3, 3, 1)])
        conv.params["w"].value[:] = 0.0
        conv.params["b"].value[:] = np.array([1.5, -2.0])
        out = conv.forward([rng.normal(size=(1, 3, 3, 1)).astype(np.float32)])
        np.testing.assert_allclose(out[..., 0], 1.5)
        np.testing.assert_allclose(out[..., 1], -2.0)

    def test_rect_kernel(self, rng):
        conv = build(Conv2D(2, (1, 7)), [(4, 4, 3)])
        out = conv.forward([rng.normal(size=(1, 4, 4, 3)).astype(np.float32)])
        assert out.shape == (1, 4, 4, 2)

    def test_param_count(self):
        conv = build(Conv2D(8, 3), [(4, 4, 3)])
        assert conv.param_count() == 3 * 3 * 3 * 8 + 8

    def test_flops(self):
        conv = Conv2D(8, 3, stride=1, padding="same", use_bias=False)
        # 4*4 positions * 8 filters * 27 mults * 2
        assert conv.flops([(4, 4, 3)]) == 4 * 4 * 8 * 27 * 2

    def test_rejects_unknown_padding(self):
        with pytest.raises(ValueError):
            Conv2D(4, 3, padding="reflect")


class TestDepthwiseConv2D:
    def test_preserves_channels(self, rng):
        dw = build(DepthwiseConv2D(3, stride=1), [(6, 6, 5)])
        out = dw.forward([rng.normal(size=(2, 6, 6, 5)).astype(np.float32)])
        assert out.shape == (2, 6, 6, 5)

    def test_channels_independent(self, rng):
        """Each output channel must depend only on its input channel."""
        dw = build(DepthwiseConv2D(3), [(5, 5, 2)])
        x = rng.normal(size=(1, 5, 5, 2)).astype(np.float32)
        base = dw.forward([x])
        x2 = x.copy()
        x2[..., 1] += 10.0
        out = dw.forward([x2])
        np.testing.assert_allclose(out[..., 0], base[..., 0], rtol=1e-5)
        assert not np.allclose(out[..., 1], base[..., 1])

    def test_matches_conv_with_diagonal_kernel(self, rng):
        """Depthwise == full conv whose kernel is channel-diagonal."""
        c = 3
        dw = build(DepthwiseConv2D(3, use_bias=False), [(6, 6, c)])
        full = build(Conv2D(c, 3, use_bias=False), [(6, 6, c)])
        full.params["w"].value[:] = 0.0
        for ch in range(c):
            full.params["w"].value[:, :, ch, ch] = dw.params["w"].value[:, :, ch]
        x = rng.normal(size=(1, 6, 6, c)).astype(np.float32)
        np.testing.assert_allclose(dw.forward([x]), full.forward([x]),
                                   rtol=1e-5, atol=1e-6)

    def test_flops_smaller_than_full_conv(self):
        shape = [(8, 8, 16)]
        assert DepthwiseConv2D(3).flops(shape) < Conv2D(16, 3).flops(shape)


class TestDense:
    def test_matrix_multiply(self, rng):
        dense = build(Dense(4), [(3,)])
        x = rng.normal(size=(2, 3)).astype(np.float32)
        expected = x @ dense.params["w"].value + dense.params["b"].value
        np.testing.assert_allclose(dense.forward([x]), expected, rtol=1e-6)

    def test_no_bias(self):
        dense = build(Dense(4, use_bias=False), [(3,)])
        assert "b" not in dense.params
        assert dense.param_count() == 12


class TestBatchNorm:
    def test_training_normalises(self, rng):
        bn = build(BatchNorm(), [(4, 4, 3)])
        x = (rng.normal(size=(8, 4, 4, 3)) * 5 + 2).astype(np.float32)
        out = bn.forward([x], training=True)
        assert abs(out.mean()) < 1e-5
        assert out.std() == pytest.approx(1.0, rel=1e-2)

    def test_running_stats_updated(self, rng):
        bn = build(BatchNorm(momentum=0.0), [(3,)])
        x = (rng.normal(size=(100, 3)) + 4.0).astype(np.float32)
        bn.forward([x], training=True)
        np.testing.assert_allclose(bn.running_mean, x.mean(axis=0), rtol=1e-4)

    def test_inference_uses_running_stats(self, rng):
        bn = build(BatchNorm(momentum=0.0), [(3,)])
        x = rng.normal(size=(50, 3)).astype(np.float32)
        bn.forward([x], training=True)
        single = x[:1] * 0 + 100.0
        out = bn.forward([single], training=False)
        expected = (100.0 - bn.running_mean) / np.sqrt(bn.running_var + bn.eps)
        np.testing.assert_allclose(out[0], expected, rtol=1e-4)

    def test_gamma_beta_applied(self, rng):
        bn = build(BatchNorm(), [(2,)])
        bn.params["gamma"].value[:] = 3.0
        bn.params["beta"].value[:] = -1.0
        x = rng.normal(size=(20, 2)).astype(np.float32)
        out = bn.forward([x], training=True)
        assert out.mean() == pytest.approx(-1.0, abs=1e-5)


class TestPooling:
    def test_maxpool(self):
        mp = MaxPool2D(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = mp.forward([x])
        np.testing.assert_allclose(out[0, :, :, 0], [[5, 7], [13, 15]])

    def test_avgpool(self):
        ap = AvgPool2D(2)
        x = np.arange(16, dtype=np.float32).reshape(1, 4, 4, 1)
        out = ap.forward([x])
        np.testing.assert_allclose(out[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_same_padding_pool(self, rng):
        mp = MaxPool2D(3, 2, "same")
        x = rng.normal(size=(1, 5, 5, 2)).astype(np.float32)
        assert mp.forward([x]).shape == (1, 3, 3, 2)

    def test_maxpool_same_ignores_padding_fill(self):
        """Padded positions must never win the max (fill = -inf)."""
        mp = MaxPool2D(3, 2, "same")
        x = np.full((1, 5, 5, 1), -7.0, dtype=np.float32)
        out = mp.forward([x])
        np.testing.assert_allclose(out, -7.0)

    def test_global_avg_pool(self, rng):
        gap = GlobalAvgPool()
        x = rng.normal(size=(3, 4, 5, 6)).astype(np.float32)
        np.testing.assert_allclose(gap.forward([x]), x.mean(axis=(1, 2)),
                                   rtol=1e-6)


class TestElementwiseAndShape:
    def test_relu6_layer(self):
        out = ReLU6().forward([np.array([-2.0, 3.0, 8.0])])
        np.testing.assert_allclose(out, [0.0, 3.0, 6.0])

    def test_add_multiple(self, rng):
        x = rng.normal(size=(2, 3)).astype(np.float32)
        out = Add().forward([x, x, x])
        np.testing.assert_allclose(out, 3 * x, rtol=1e-6)

    def test_add_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Add().out_shape([(2, 2, 3), (2, 2, 4)])

    def test_concat(self, rng):
        a = rng.normal(size=(2, 4, 4, 3)).astype(np.float32)
        b = rng.normal(size=(2, 4, 4, 5)).astype(np.float32)
        out = Concat().forward([a, b])
        assert out.shape == (2, 4, 4, 8)
        np.testing.assert_allclose(out[..., :3], a)

    def test_concat_spatial_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Concat().out_shape([(4, 4, 3), (2, 2, 3)])

    def test_flatten(self, rng):
        x = rng.normal(size=(2, 3, 3, 2)).astype(np.float32)
        out = Flatten().forward([x])
        assert out.shape == (2, 18)

    def test_softmax_layer(self, rng):
        out = Softmax().forward([rng.normal(size=(4, 5))])
        np.testing.assert_allclose(out.sum(axis=1), np.ones(4), rtol=1e-6)


class TestDropout:
    def test_identity_at_inference(self, rng):
        drop = Dropout(0.5)
        x = rng.normal(size=(4, 10)).astype(np.float32)
        np.testing.assert_allclose(drop.forward([x], training=False), x)

    def test_scales_at_training(self):
        drop = Dropout(0.5, seed=0)
        x = np.ones((2000, 10), dtype=np.float32)
        out = drop.forward([x], training=True)
        # inverted dropout keeps the expectation
        assert out.mean() == pytest.approx(1.0, rel=0.05)
        assert set(np.unique(out)) == {0.0, 2.0}

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestFrozen:
    def test_frozen_conv_accumulates_no_grad(self, rng):
        conv = build(Conv2D(2, 3), [(4, 4, 1)])
        conv.frozen = True
        x = rng.normal(size=(1, 4, 4, 1)).astype(np.float32)
        out = conv.forward([x])
        conv.backward(np.ones_like(out))
        assert np.all(conv.params["w"].grad == 0.0)

    def test_frozen_still_propagates_input_grad(self, rng):
        conv = build(Conv2D(2, 3), [(4, 4, 1)])
        conv.frozen = True
        x = rng.normal(size=(1, 4, 4, 1)).astype(np.float32)
        out = conv.forward([x])
        (dx,) = conv.backward(np.ones_like(out))
        assert dx.shape == x.shape
        assert np.any(dx != 0.0)
