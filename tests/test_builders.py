"""Tests for the pluggable ladder builders and the pruning primitives."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from conftest import make_tiny_net
from repro.metrics import (
    CandidatePoint,
    accuracy_at_deadline,
    frontier_dominates,
)
from repro.netcut import (
    BUILDERS,
    DPDepthBuilder,
    FilterPruneBuilder,
    GreedyLayerRemoval,
    HALPBuilder,
    artifact_points,
    build_rungs,
    capacity_accuracy,
    feature_flops,
    frontier_artifacts,
    load_artifact,
    save_artifact,
)
from repro.serve import TRNLadder
from repro.trim import (
    channel_importance,
    prunable_channel_convs,
    prune_channels,
    remove_blocks,
    skippable_blocks,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def tiny():
    return make_tiny_net()


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(3).normal(size=(4, 8, 8, 3))


class TestPrunePrimitives:
    def test_prunable_convs_exclude_residual_feeders(self, tiny):
        # b1_conv and b2_conv both reach b2_add (channel-coupled through
        # the residual), so only b3_conv's channel axis is free
        assert prunable_channel_convs(tiny) == ["b3_conv"]

    def test_channel_importance_shape_and_sign(self, tiny):
        imp = channel_importance(tiny, "b3_conv")
        assert imp.shape == (tiny.nodes["b3_conv"].layer.filters,)
        assert np.all(imp >= 0)

    def test_keep_all_prune_is_identity(self, tiny, x):
        pruned = prune_channels(tiny, {"b3_conv": np.arange(4)})
        np.testing.assert_allclose(pruned.forward(x), tiny.forward(x),
                                   rtol=1e-6, atol=1e-7)

    def test_prune_shrinks_filters_and_state(self, tiny, x):
        pruned = prune_channels(tiny, {"b3_conv": np.array([1, 3])},
                                name="tiny-pruned")
        assert pruned.name == "tiny-pruned"
        assert pruned.nodes["b3_conv"].layer.filters == 2
        assert pruned.state_dict()["b3_conv.w"].shape[-1] == 2
        out = pruned.forward(x)
        assert out.shape == tiny.forward(x).shape
        assert np.all(np.isfinite(out))
        # the original is untouched
        assert tiny.nodes["b3_conv"].layer.filters == 4

    def test_prune_rejects_unprunable_conv(self, tiny):
        with pytest.raises(ValueError, match="not .*prunable"):
            prune_channels(tiny, {"b1_conv": np.array([0])})

    def test_skippable_blocks_are_shape_preserving_interiors(self, tiny):
        # b3 holds the stride-2 pool (entry shape != exit shape)
        assert skippable_blocks(tiny) == ["b1", "b2"]

    def test_remove_blocks_rewires_consumers(self, tiny, x):
        slim = remove_blocks(tiny, ["b2"], name="tiny-nob2")
        assert "b2_conv" not in slim.nodes
        assert not any(n.block_id == "b2" for n in slim.nodes.values())
        out = slim.forward(x)
        assert out.shape == tiny.forward(x).shape
        assert np.all(np.isfinite(out))


class TestCapacityAccuracy:
    def test_full_network_scores_the_ceiling(self, tiny):
        accuracy = capacity_accuracy(tiny, ceiling=0.95, floor=0.4)
        assert accuracy(tiny) == pytest.approx(0.95)

    def test_smaller_networks_score_lower_but_above_floor(self, tiny):
        accuracy = capacity_accuracy(tiny, ceiling=0.95, floor=0.4)
        slim = remove_blocks(tiny, ["b1", "b2"])
        assert feature_flops(slim) < feature_flops(tiny)
        assert 0.4 < accuracy(slim) < accuracy(tiny)


class TestBuilders:
    @pytest.fixture(scope="class")
    def per_strategy(self, tiny, tiny_device_cls):
        return build_rungs(tiny, tiny_device_cls, max_rungs=3)

    @pytest.fixture(scope="class")
    def tiny_device_cls(self):
        from repro.device.spec import DeviceSpec

        return DeviceSpec(name="test-device", peak_gflops=10.0,
                          bandwidth_gbps=1.0, launch_overhead_us=5.0,
                          occupancy_flops=1e4, noise_std=0.005,
                          straggler_prob=0.0, event_overhead_us=2.0)

    def test_registry_covers_all_strategies(self):
        assert sorted(BUILDERS) == ["dp-depth", "filter-prune", "greedy",
                                    "halp"]
        assert BUILDERS["greedy"] is GreedyLayerRemoval
        assert BUILDERS["filter-prune"] is FilterPruneBuilder
        assert BUILDERS["halp"] is HALPBuilder
        assert BUILDERS["dp-depth"] is DPDepthBuilder

    def test_every_builder_tags_and_grades(self, per_strategy):
        assert sorted(per_strategy) == sorted(BUILDERS)
        for strategy, artifacts in per_strategy.items():
            assert artifacts
            assert all(a.builder == strategy for a in artifacts)
            assert artifacts[0].trn_name.endswith(f"{strategy}-full")
            names = [a.trn_name for a in artifacts]
            assert len(set(names)) == len(names)
            assert all(a.measured_latency_ms > 0 for a in artifacts)
            assert all(0.0 <= a.accuracy <= 1.0 for a in artifacts)

    def test_compression_actually_compresses(self, per_strategy):
        for strategy, artifacts in per_strategy.items():
            latencies = [a.measured_latency_ms for a in artifacts]
            assert min(latencies) < max(latencies), (
                f"{strategy} produced no compressed rung on the tiny net")

    def test_max_rungs_caps_every_strategy(self, tiny, tiny_device_cls):
        capped = build_rungs(tiny, tiny_device_cls, max_rungs=2)
        assert all(len(artifacts) <= 2 for artifacts in capped.values())

    def test_rungs_are_deterministic(self, tiny, tiny_device_cls,
                                     per_strategy):
        again = build_rungs(tiny, tiny_device_cls, max_rungs=3)
        for strategy in per_strategy:
            first = [(a.trn_name, a.measured_latency_ms, a.accuracy)
                     for a in per_strategy[strategy]]
            second = [(a.trn_name, a.measured_latency_ms, a.accuracy)
                      for a in again[strategy]]
            assert first == second

    def test_dp_depth_only_removes_skippable_blocks(self, tiny,
                                                    tiny_device_cls):
        artifacts = DPDepthBuilder().rungs(tiny, tiny_device_cls)
        full = artifacts[0].network
        skippable = set(skippable_blocks(full))
        for artifact in artifacts[1:]:
            gone = {n.block_id for n in full.nodes.values()
                    if n.name not in artifact.network.nodes}
            assert gone <= skippable

    def test_halp_prunes_channels_not_depth(self, tiny, tiny_device_cls):
        artifacts = HALPBuilder().rungs(tiny, tiny_device_cls)
        full = artifacts[0].network
        for artifact in artifacts:
            assert set(artifact.network.nodes) == set(full.nodes)

    def test_artifact_roundtrip_keeps_builder_tag(self, per_strategy,
                                                  tmp_path, x):
        artifact = per_strategy["halp"][-1]
        path = str(tmp_path / "rung.npz")
        save_artifact(artifact, path)
        loaded = load_artifact(path)
        assert loaded.builder == "halp"
        assert loaded.trn_name == artifact.trn_name
        assert loaded.measured_latency_ms == artifact.measured_latency_ms
        np.testing.assert_allclose(loaded.network.forward(x),
                                   artifact.network.forward(x),
                                   rtol=1e-6, atol=1e-7)

    def test_mixed_ladder_loads_compiles_and_tags(self, per_strategy,
                                                  tiny_device_cls, x):
        mixed = [a for strategy in sorted(per_strategy)
                 for a in per_strategy[strategy]]
        front = frontier_artifacts(mixed)
        ladder = TRNLadder.from_artifacts(front, tiny_device_cls)
        assert len(ladder.rungs) == len(front)
        estimates = [r.estimate_ms(1) for r in ladder.rungs]
        assert estimates == sorted(estimates, reverse=True)
        snapshot = ladder.snapshot()
        assert {r["builder"] for r in snapshot} - {""}
        assert all(set(r) == {"name", "builder", "estimate_ms", "accuracy"}
                   for r in snapshot)
        out = ladder.rungs[-1].forward(list(x))
        assert np.all(np.isfinite(out))

    def test_frontier_artifacts_are_non_dominated(self, per_strategy):
        mixed = [a for strategy in sorted(per_strategy)
                 for a in per_strategy[strategy]]
        front = frontier_artifacts(mixed)
        points = artifact_points(front)
        for p in points:
            assert not any(q.latency_ms < p.latency_ms
                           and q.accuracy > p.accuracy
                           for q in artifact_points(mixed))


class TestParetoHelpers:
    POINTS = [CandidatePoint("slow", 10.0, 0.9),
              CandidatePoint("mid", 5.0, 0.8),
              CandidatePoint("fast", 1.0, 0.6)]

    def test_accuracy_at_deadline_picks_best_feasible(self):
        assert accuracy_at_deadline(self.POINTS, 6.0) == 0.8
        assert accuracy_at_deadline(self.POINTS, 20.0) == 0.9
        assert np.isnan(accuracy_at_deadline(self.POINTS, 0.5))

    def test_frontier_dominates_superset_and_ties(self):
        subset = self.POINTS[1:]
        assert frontier_dominates(self.POINTS, subset)
        assert frontier_dominates(self.POINTS, self.POINTS)
        assert not frontier_dominates(subset, self.POINTS)


class TestBenchByteStability:
    def test_bench_builders_json_stable_across_hash_seeds(self, tmp_path):
        script = os.path.join(REPO, "scripts", "bench_builders.py")

        def run(hashseed: str, name: str) -> bytes:
            out = tmp_path / name
            env = dict(os.environ, PYTHONHASHSEED=hashseed,
                       PYTHONPATH=os.path.join(REPO, "src"),
                       REPRO_CACHE_DIR=str(tmp_path / f"cache-{name}"))
            subprocess.run(
                [sys.executable, script, "--nets", "mobilenet_v1_0.25",
                 "--devices", "xavier", "--max-rungs", "2",
                 "--out", str(out)],
                env=env, check=True, capture_output=True)
            return out.read_bytes()

        first = run("0", "a.json")
        second = run("31337", "b.json")
        assert first == second
        payload = json.loads(first)
        assert payload["benchmark"] == "builder-bakeoff"
        net = payload["nets"]["mobilenet_v1_0.25"]["xavier"]
        assert set(net["strategies"]) == set(BUILDERS)
        assert all(net["mixed"]["dominates"].values())
