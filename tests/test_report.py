"""Tests for the markdown report builder (reduced workbench)."""

import pytest

from repro.experiments import ExperimentConfig, Workbench
from repro.report import build_report
from repro.train import PretrainConfig


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    config = ExperimentConfig(
        networks=("mobilenet_v1_0.25", "mobilenet_v1_0.5"),
        hands_images=60, head_epochs=6, deadline_ms=0.35)
    wb = Workbench(
        config,
        cache_dir=str(tmp_path_factory.mktemp("reportcache")),
        pretrain_config=PretrainConfig(n_images=40, epochs=1,
                                       batch_size=16))
    return build_report(wb)


class TestReport:
    def test_has_all_sections(self, report):
        for heading in ("# NetCut reproduction report",
                        "## Off-the-shelf networks (Fig. 1)",
                        "## Blockwise TRN sweep (Figs 4-6)",
                        "## Pareto frontier (Fig. 7)",
                        "## Latency estimators (Figs 8-9)",
                        "## NetCut selections (Fig. 10)"):
            assert heading in report

    def test_mentions_both_networks(self, report):
        assert "mobilenet_v1_0.25" in report
        assert "mobilenet_v1_0.5" in report

    def test_includes_paper_references(self, report):
        assert "+10.43%" in report
        assert "27x" in report

    def test_tables_well_formed(self, report):
        """Every markdown table row has a consistent column count."""
        lines = report.splitlines()
        i = 0
        tables = 0
        while i < len(lines):
            if lines[i].startswith("|"):
                cols = lines[i].count("|")
                block = []
                while i < len(lines) and lines[i].startswith("|"):
                    block.append(lines[i])
                    i += 1
                tables += 1
                assert all(row.count("|") == cols for row in block)
            else:
                i += 1
        assert tables >= 5

    def test_reports_winner(self, report):
        assert "Winner: **" in report
