"""Tests for pretraining and its weight cache."""

import os

import numpy as np

from repro.train import PretrainConfig, get_pretrained, pretrain, recipe_for
from repro.zoo import build_network


TINY = PretrainConfig(n_images=40, epochs=1, batch_size=16)


class TestRecipes:
    def test_mobilenets_get_longer_recipe(self):
        base = PretrainConfig()
        mob = recipe_for("mobilenet_v1_0.5", base)
        assert mob.epochs > base.epochs
        assert mob.lr > base.lr

    def test_resnet_uses_base(self):
        base = PretrainConfig()
        assert recipe_for("resnet50", base) == base

    def test_cache_key_distinguishes_recipes(self):
        a = PretrainConfig(epochs=5).cache_key("resnet50")
        b = PretrainConfig(epochs=6).cache_key("resnet50")
        assert a != b


class TestPretrain:
    def test_loss_decreases(self):
        net = build_network("mobilenet_v1_0.5").build(0)
        data_before = net.state_dict()
        pretrain(net, TINY)
        changed = any(
            not np.array_equal(data_before[k], v)
            for k, v in net.state_dict().items())
        assert changed

    def test_output_restored_to_probs(self):
        net = build_network("mobilenet_v1_0.5").build(0)
        pretrain(net, TINY)
        assert net.output_name == "probs"


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = str(tmp_path)
        a = get_pretrained("mobilenet_v1_0.25", TINY, cache_dir=cache)
        files = os.listdir(cache)
        assert any(f.endswith(".npz") for f in files)
        b = get_pretrained("mobilenet_v1_0.25", TINY, cache_dir=cache)
        x = np.random.default_rng(0).normal(size=(1, 32, 32, 3)).astype(
            np.float32)
        np.testing.assert_allclose(a.forward(x), b.forward(x), rtol=1e-5)

    def test_cache_includes_running_stats(self, tmp_path):
        cache = str(tmp_path)
        get_pretrained("mobilenet_v1_0.25", TINY, cache_dir=cache)
        fname = next(f for f in os.listdir(cache) if f.endswith(".npz"))
        with np.load(os.path.join(cache, fname)) as archive:
            assert any("running_mean" in k for k in archive.files)
