"""Unit tests for repro.nn.functional primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestConvOutputSize:
    def test_unit_stride_no_pad(self):
        assert F.conv_output_size(8, 3, 1, 0) == 6

    def test_stride_two(self):
        assert F.conv_output_size(8, 3, 2, 0) == 3

    def test_with_padding(self):
        assert F.conv_output_size(8, 3, 1, 1) == 8


class TestSamePadding:
    def test_stride_one_odd_kernel(self):
        assert F.same_padding(8, 3, 1) == (1, 1)

    def test_stride_two(self):
        before, after = F.same_padding(8, 3, 2)
        out = (8 + before + after - 3) // 2 + 1
        assert out == 4  # ceil(8/2)

    def test_asymmetric(self):
        before, after = F.same_padding(8, 2, 2)
        assert (before, after) == (0, 0)

    @given(size=st.integers(1, 64), kernel=st.integers(1, 7),
           stride=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_property_output_is_ceil(self, size, kernel, stride):
        before, after = F.same_padding(size, kernel, stride)
        padded = size + before + after
        if padded >= kernel:
            out = (padded - kernel) // stride + 1
            assert out == -(-size // stride)


class TestIm2Col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 6, 6, 3))
        cols = F.im2col(x, 3, 3, 1)
        assert cols.shape == (2, 4, 4, 27)

    def test_values_match_manual_patch(self, rng):
        x = rng.normal(size=(1, 5, 5, 2))
        cols = F.im2col(x, 3, 3, 1)
        manual = x[0, 1:4, 2:5, :].reshape(-1)
        np.testing.assert_allclose(cols[0, 1, 2], manual)

    def test_stride_two_picks_correct_windows(self, rng):
        x = rng.normal(size=(1, 6, 6, 1))
        cols = F.im2col(x, 2, 2, 2)
        assert cols.shape == (1, 3, 3, 4)
        np.testing.assert_allclose(cols[0, 1, 1],
                                   x[0, 2:4, 2:4, 0].reshape(-1))

    def test_conv_equivalence_with_explicit_loop(self, rng):
        """im2col @ w must equal a naive convolution."""
        x = rng.normal(size=(1, 5, 5, 2))
        w = rng.normal(size=(3, 3, 2, 4))
        cols = F.im2col(x, 3, 3, 1)
        fast = cols @ w.reshape(-1, 4)
        slow = np.zeros((1, 3, 3, 4))
        for i in range(3):
            for j in range(3):
                patch = x[0, i:i + 3, j:j + 3, :]
                slow[0, i, j] = np.tensordot(patch, w, axes=3)
        np.testing.assert_allclose(fast, slow, rtol=1e-6)


class TestCol2Im:
    def test_adjoint_property(self, rng):
        """col2im is the adjoint of im2col: <im2col(x), c> == <x, col2im(c)>."""
        x = rng.normal(size=(2, 6, 6, 3))
        cols = rng.normal(size=(2, 4, 4, 27))
        lhs = float(np.sum(F.im2col(x, 3, 3, 1) * cols))
        rhs = float(np.sum(x * F.col2im(cols, x.shape, 3, 3, 1)))
        assert lhs == pytest.approx(rhs, rel=1e-6)

    def test_adjoint_property_strided(self, rng):
        x = rng.normal(size=(1, 8, 8, 2))
        cols = rng.normal(size=(1, 3, 3, 8))
        lhs = float(np.sum(F.im2col(x, 2, 2, 3) * cols))
        rhs = float(np.sum(x * F.col2im(cols, x.shape, 2, 2, 3)))
        assert lhs == pytest.approx(rhs, rel=1e-6)


class TestActivations:
    def test_relu(self):
        np.testing.assert_allclose(F.relu(np.array([-1.0, 0.0, 2.0])),
                                   [0.0, 0.0, 2.0])

    def test_relu6_clips(self):
        np.testing.assert_allclose(F.relu6(np.array([-1.0, 3.0, 9.0])),
                                   [0.0, 3.0, 6.0])

    def test_relu_grad_masks(self):
        x = np.array([-1.0, 1.0])
        g = np.array([5.0, 5.0])
        np.testing.assert_allclose(F.relu_grad(x, g), [0.0, 5.0])

    def test_relu6_grad_masks_both_ends(self):
        x = np.array([-1.0, 3.0, 7.0])
        g = np.ones(3)
        np.testing.assert_allclose(F.relu6_grad(x, g), [0.0, 1.0, 0.0])

    def test_softmax_rows_sum_to_one(self, rng):
        p = F.softmax(rng.normal(size=(4, 7)))
        np.testing.assert_allclose(p.sum(axis=-1), np.ones(4), rtol=1e-6)

    def test_softmax_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0),
                                   rtol=1e-6)

    def test_softmax_extreme_values_stable(self):
        p = F.softmax(np.array([[1000.0, -1000.0]]))
        assert np.isfinite(p).all()
        assert p[0, 0] == pytest.approx(1.0)

    def test_sigmoid_symmetry(self, rng):
        x = rng.normal(size=10)
        np.testing.assert_allclose(F.sigmoid(x) + F.sigmoid(-x),
                                   np.ones(10), rtol=1e-6)

    def test_sigmoid_extreme_stable(self):
        out = F.sigmoid(np.array([-1000.0, 1000.0]))
        assert np.isfinite(out).all()


class TestPadSame:
    def test_identity_when_no_padding_needed(self, rng):
        x = rng.normal(size=(1, 4, 4, 1))
        assert F.pad_same(x, (1, 1), (1, 1)) is x

    def test_pads_to_expected_size(self, rng):
        x = rng.normal(size=(1, 5, 5, 2))
        xp = F.pad_same(x, (3, 3), (1, 1))
        assert xp.shape == (1, 7, 7, 2)
