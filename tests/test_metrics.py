"""Tests for angular similarity and Pareto-frontier analysis."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    CandidatePoint,
    accuracy_gap,
    angular_distance,
    angular_similarity,
    best_under_deadline,
    bhattacharyya_angle,
    dominates,
    mean_angular_similarity,
    pareto_frontier,
    relative_improvement,
)


def dist(*values):
    arr = np.asarray(values, dtype=np.float64)
    return arr / arr.sum()


class TestAngular:
    def test_identical_is_one(self):
        p = dist(0.2, 0.3, 0.5)
        assert angular_similarity(p, p) == pytest.approx(1.0, abs=1e-5)

    def test_orthogonal_is_zero(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert angular_similarity(p, q) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self, rng):
        p = dist(*rng.random(5))
        q = dist(*rng.random(5))
        assert angular_distance(p, q) == pytest.approx(
            angular_distance(q, p), rel=1e-9)

    def test_batch_shape(self, rng):
        p = rng.random((7, 5))
        q = rng.random((7, 5))
        assert angular_similarity(p, q).shape == (7,)

    def test_mean_angular_similarity(self, rng):
        p = rng.random((4, 5))
        val = mean_angular_similarity(p, p)
        assert val == pytest.approx(1.0, abs=1e-5)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=40, deadline=None)
    def test_bounded_in_unit_interval(self, seed):
        r = np.random.default_rng(seed)
        p = dist(*(r.random(5) + 1e-6))
        q = dist(*(r.random(5) + 1e-6))
        d = float(angular_distance(p, q))
        assert 0.0 <= d <= 1.0

    def test_bhattacharyya_identical_zero(self):
        p = dist(0.1, 0.9)
        assert bhattacharyya_angle(p, p) == pytest.approx(0.0, abs=1e-6)

    def test_bhattacharyya_disjoint_is_one(self):
        assert bhattacharyya_angle([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)


class TestDominance:
    def test_strictly_better(self):
        a = CandidatePoint("a", 1.0, 0.9)
        b = CandidatePoint("b", 2.0, 0.8)
        assert dominates(a, b)
        assert not dominates(b, a)

    def test_equal_points_do_not_dominate(self):
        a = CandidatePoint("a", 1.0, 0.9)
        b = CandidatePoint("b", 1.0, 0.9)
        assert not dominates(a, b)

    def test_tradeoff_no_domination(self):
        fast = CandidatePoint("f", 1.0, 0.7)
        accurate = CandidatePoint("s", 2.0, 0.9)
        assert not dominates(fast, accurate)
        assert not dominates(accurate, fast)


class TestParetoFrontier:
    def test_removes_dominated(self):
        pts = [CandidatePoint("a", 1.0, 0.5),
               CandidatePoint("b", 2.0, 0.4),   # dominated by a
               CandidatePoint("c", 3.0, 0.9)]
        frontier = pareto_frontier(pts)
        assert [p.name for p in frontier] == ["a", "c"]

    def test_frontier_sorted_and_increasing(self, rng):
        pts = [CandidatePoint(str(i), float(rng.random()),
                              float(rng.random())) for i in range(50)]
        frontier = pareto_frontier(pts)
        lats = [p.latency_ms for p in frontier]
        accs = [p.accuracy for p in frontier]
        assert lats == sorted(lats)
        assert accs == sorted(accs)

    @given(seed=st.integers(0, 200), n=st.integers(1, 40))
    @settings(max_examples=40, deadline=None)
    def test_no_frontier_point_dominated(self, seed, n):
        r = np.random.default_rng(seed)
        pts = [CandidatePoint(str(i), float(r.random()), float(r.random()))
               for i in range(n)]
        frontier = pareto_frontier(pts)
        for f in frontier:
            assert not any(dominates(p, f) for p in pts)

    @given(seed=st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_every_point_dominated_by_or_on_frontier(self, seed):
        r = np.random.default_rng(seed)
        pts = [CandidatePoint(str(i), float(r.random()), float(r.random()))
               for i in range(25)]
        frontier = pareto_frontier(pts)
        for p in pts:
            assert (p in frontier
                    or any(dominates(f, p) for f in frontier))

    def test_latency_tie_keeps_most_accurate(self):
        pts = [CandidatePoint("lo", 1.0, 0.5), CandidatePoint("hi", 1.0, 0.8)]
        frontier = pareto_frontier(pts)
        assert [p.name for p in frontier] == ["hi"]


class TestDeadlineQueries:
    PTS = [CandidatePoint("fast", 0.3, 0.7),
           CandidatePoint("mid", 0.8, 0.82),
           CandidatePoint("slow", 2.0, 0.95)]

    def test_best_under_deadline(self):
        best = best_under_deadline(self.PTS, 0.9)
        assert best.name == "mid"

    def test_none_when_infeasible(self):
        assert best_under_deadline(self.PTS, 0.1) is None

    def test_accuracy_gap(self):
        gap = accuracy_gap(self.PTS, 0.9)
        assert gap == pytest.approx(0.95 - 0.82)

    def test_accuracy_gap_nan_when_infeasible(self):
        assert np.isnan(accuracy_gap(self.PTS, 0.01))

    def test_relative_improvement(self):
        base = CandidatePoint("base", 0.4, 0.80)
        trn = CandidatePoint("trn", 0.8, 0.8834)
        assert relative_improvement(base, trn) == pytest.approx(10.43, abs=0.01)

    def test_relative_improvement_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            relative_improvement(CandidatePoint("z", 1.0, 0.0),
                                 CandidatePoint("t", 1.0, 0.5))
