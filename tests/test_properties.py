"""Property-based tests (hypothesis) on core invariants.

These complement the unit suites with randomised structural checks: shape
algebra of layers, fusion partitions, latency-model monotonicity, trim
consistency, SVR behaviour and metric axioms.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.fusion import fuse_kernels
from repro.device.latency import kernel_latency_ms, network_latency
from repro.device.spec import DeviceSpec
from repro.estimators import SVR
from repro.metrics import angular_distance
from repro.nn import BatchNorm, Conv2D, Dense, DepthwiseConv2D, GlobalAvgPool, Network, ReLU
from repro.trim import build_trn, enumerate_blockwise, removed_node_set

# -- strategies -------------------------------------------------------------

conv_params = st.tuples(
    st.integers(1, 8),            # filters
    st.sampled_from([1, 3, 5]),   # kernel
    st.sampled_from([1, 2]),      # stride
    st.sampled_from(["same", "valid"]),
)


@st.composite
def chain_networks(draw):
    """Random sequential CNNs with tagged blocks."""
    depth = draw(st.integers(1, 4))
    net = Network("rand", (8, 8, 2))
    net.add("stem", Conv2D(draw(st.integers(2, 4)), 3), role="stem",
            block_id="stem")
    prev = "stem"
    for b in range(depth):
        filters = draw(st.integers(2, 6))
        net.add(f"b{b}_conv", Conv2D(filters, 3), inputs=prev,
                block_id=f"b{b}")
        net.add(f"b{b}_bn", BatchNorm(), block_id=f"b{b}")
        net.add(f"b{b}_relu", ReLU(), block_id=f"b{b}")
        prev = f"b{b}_relu"
    net.add("gap", GlobalAvgPool(), role="head")
    net.add("fc", Dense(3), role="head")
    return net.build(draw(st.integers(0, 100)))


# -- shape algebra ------------------------------------------------------------

class TestShapeAlgebra:
    @given(params=conv_params, h=st.integers(3, 12), c=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_conv_out_shape_matches_forward(self, params, h, c):
        filters, kernel, stride, padding = params
        if padding == "valid" and kernel > h:
            return
        conv = Conv2D(filters, kernel, stride, padding)
        conv.build([(h, h, c)], np.random.default_rng(0))
        x = np.zeros((2, h, h, c), dtype=np.float32)
        out = conv.forward([x])
        assert out.shape[1:] == conv.out_shape([(h, h, c)])

    @given(kernel=st.sampled_from([1, 3, 5]), stride=st.sampled_from([1, 2]),
           h=st.integers(3, 12), c=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_depthwise_out_shape_matches_forward(self, kernel, stride, h, c):
        dw = DepthwiseConv2D(kernel, stride)
        dw.build([(h, h, c)], np.random.default_rng(0))
        x = np.zeros((1, h, h, c), dtype=np.float32)
        assert dw.forward([x]).shape[1:] == dw.out_shape([(h, h, c)])

    @given(net=chain_networks())
    @settings(max_examples=15, deadline=None)
    def test_network_shapes_consistent_with_forward(self, net):
        x = np.zeros((2,) + net.input_shape, dtype=np.float32)
        out, acts = net.forward(x, capture=list(net.nodes)[1:])
        for name, act in acts.items():
            assert act.shape[1:] == net.shape_of(name), name


# -- fusion --------------------------------------------------------------------

class TestFusionProperties:
    @given(net=chain_networks(), enabled=st.booleans())
    @settings(max_examples=15, deadline=None)
    def test_fusion_is_a_partition(self, net, enabled):
        groups = fuse_kernels(net, enabled=enabled)
        names = [n for g in groups for n in g.node_names]
        expected = [n for n in net.nodes if n != "input"]
        assert sorted(names) == sorted(expected)

    @given(net=chain_networks())
    @settings(max_examples=15, deadline=None)
    def test_fused_never_more_kernels(self, net):
        assert len(fuse_kernels(net, True)) <= len(fuse_kernels(net, False))


# -- latency model ---------------------------------------------------------------

class TestLatencyProperties:
    SPEC = DeviceSpec("p", 10, 1, 5, 1e4)

    @given(f1=st.floats(1, 1e8), f2=st.floats(1, 1e8),
           b=st.floats(1, 1e7))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_flops(self, f1, f2, b):
        lo, hi = sorted((f1, f2))
        assert (kernel_latency_ms(lo, b, self.SPEC)
                <= kernel_latency_ms(hi, b, self.SPEC) + 1e-12)

    @given(net=chain_networks())
    @settings(max_examples=10, deadline=None)
    def test_network_latency_positive_and_additive(self, net):
        bd = network_latency(net, self.SPEC)
        assert bd.total_ms > 0
        assert bd.total_ms == pytest.approx(
            sum(k.latency_ms for k in bd.kernels))

    @given(net=chain_networks())
    @settings(max_examples=10, deadline=None)
    def test_every_prefix_is_cheaper(self, net):
        full = network_latency(net, self.SPEC).total_ms
        for cut in enumerate_blockwise(net):
            sub = net.subgraph(cut.cut_node)
            assert network_latency(sub, self.SPEC).total_ms < full


# -- trim ---------------------------------------------------------------------

class TestTrimProperties:
    @given(net=chain_networks())
    @settings(max_examples=10, deadline=None)
    def test_cutpoints_partition_consistently(self, net):
        """kept ∪ removed == all nodes, for every blockwise cutpoint."""
        for cut in enumerate_blockwise(net):
            removed = removed_node_set(net, cut.cut_node)
            assert cut.cut_node not in removed
            assert "input" not in removed
            kept = set(net.nodes) - removed
            # every kept node's inputs are kept (the subgraph is closed)
            for name in kept:
                assert set(net.nodes[name].inputs) <= kept

    @given(net=chain_networks())
    @settings(max_examples=8, deadline=None)
    def test_trn_always_outputs_distribution(self, net):
        x = np.random.default_rng(0).normal(
            size=(3,) + net.input_shape).astype(np.float32)
        for cut in enumerate_blockwise(net):
            trn = build_trn(net, cut.cut_node, num_classes=4)
            out = trn.forward(x)
            assert out.shape == (3, 4)
            np.testing.assert_allclose(out.sum(axis=1), 1.0, rtol=1e-4)

    @given(net=chain_networks())
    @settings(max_examples=8, deadline=None)
    def test_deeper_cuts_remove_more_layers(self, net):
        removed = [c.layers_removed for c in enumerate_blockwise(net)]
        assert removed == sorted(removed)


# -- estimators ------------------------------------------------------------------

class TestSVRProperties:
    @given(seed=st.integers(0, 50), scale=st.floats(0.1, 100.0))
    @settings(max_examples=15, deadline=None)
    def test_target_scale_equivariance(self, seed, scale):
        """Scaling targets scales predictions (standardised features)."""
        r = np.random.default_rng(seed)
        x = r.normal(size=(20, 2))
        y = 1.0 + x[:, 0] + 0.2 * np.sin(x[:, 1])
        a = SVR(c=1e5, gamma=0.5, epsilon=1e-6).fit(x, y).predict(x)
        b = SVR(c=1e5, gamma=0.5, epsilon=1e-6).fit(x, y * scale).predict(x)
        np.testing.assert_allclose(b, a * scale, rtol=0.05, atol=1e-3 * scale)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_feature_shift_invariance(self, seed):
        """Internal standardisation makes predictions shift-invariant."""
        r = np.random.default_rng(seed)
        x = r.normal(size=(20, 3))
        y = x[:, 0] ** 2 + 2.0
        a = SVR(c=1e4, gamma=0.5).fit(x, y).predict(x)
        b = SVR(c=1e4, gamma=0.5).fit(x + 100.0, y).predict(x + 100.0)
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-6)


# -- metrics ----------------------------------------------------------------------

class TestMetricProperties:
    @given(seed=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_angular_distance_triangle_like(self, seed):
        """Angular distance (arccos of cosine) obeys the triangle
        inequality on the sphere."""
        r = np.random.default_rng(seed)
        p, q, s = (r.random(4) + 1e-3 for _ in range(3))
        p, q, s = p / p.sum(), q / q.sum(), s / s.sum()
        d = angular_distance
        assert d(p, s) <= d(p, q) + d(q, s) + 1e-9

    @given(seed=st.integers(0, 200), scale=st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_angular_distance_scale_invariant(self, seed, scale):
        r = np.random.default_rng(seed)
        p = r.random(5) + 1e-3
        q = r.random(5) + 1e-3
        assert angular_distance(p, q) == pytest.approx(
            float(angular_distance(p * scale, q)), abs=1e-9)
