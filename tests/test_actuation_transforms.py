"""Tests for the actuation model and the augmentation transforms."""

import numpy as np
import pytest

from repro.data.transforms import (
    augment_batch,
    brightness_jitter,
    random_flip,
    random_shift,
)
from repro.hand.actuation import ActuationModel
from repro.hand.grasps import joint_targets


class TestActuationModel:
    def _decision(self, grasp=1):
        d = np.zeros(5)
        d[grasp] = 1.0
        return d

    def test_converges_given_enough_time(self):
        model = ActuationModel()
        outcome = model.drive(self._decision(), available_ms=1000.0)
        assert outcome.completed
        assert outcome.posture_error < 0.06
        assert outcome.settle_time_ms < 1000.0

    def test_incomplete_when_rushed(self):
        model = ActuationModel()
        outcome = model.drive(self._decision(), available_ms=30.0)
        assert not outcome.completed
        assert outcome.posture_error > 0.1

    def test_open_palm_is_instant_from_open(self):
        model = ActuationModel()
        outcome = model.drive(self._decision(0), available_ms=50.0)
        assert outcome.completed  # already at the open posture
        assert outcome.posture_error < 0.05

    def test_rate_limit_bounds_progress(self):
        slow = ActuationModel(max_rate_per_ms=0.001)
        fast = ActuationModel(max_rate_per_ms=0.01)
        d = self._decision(1)
        assert (slow.required_time_ms(d) > fast.required_time_ms(d))

    def test_required_time_matches_drive(self):
        model = ActuationModel()
        d = self._decision(2)
        t = model.required_time_ms(d)
        outcome = model.drive(d, available_ms=t + 1)
        assert outcome.completed

    def test_mixture_decision_targets_mixture(self):
        model = ActuationModel()
        d = np.array([0.5, 0.5, 0.0, 0.0, 0.0])
        outcome = model.drive(d, available_ms=1500.0)
        np.testing.assert_allclose(outcome.target_joints,
                                   joint_targets(d))

    def test_validates_inputs(self):
        model = ActuationModel()
        with pytest.raises(ValueError):
            model.drive(np.ones(3), 100.0)
        with pytest.raises(ValueError):
            model.drive(self._decision(), -1.0)
        with pytest.raises(ValueError):
            ActuationModel(tau_ms=0.0)


class TestTransforms:
    @pytest.fixture
    def batch(self, rng):
        return rng.random((8, 16, 16, 3)).astype(np.float32)

    def test_flip_preserves_content(self, batch):
        out = random_flip(batch, np.random.default_rng(0), p=1.0)
        np.testing.assert_allclose(out, batch[:, :, ::-1, :])

    def test_flip_probability_zero_is_identity(self, batch):
        out = random_flip(batch, np.random.default_rng(0), p=0.0)
        np.testing.assert_array_equal(out, batch)

    def test_shift_preserves_shape_and_range(self, batch):
        out = random_shift(batch, np.random.default_rng(0), max_shift=3)
        assert out.shape == batch.shape
        assert out.min() >= 0 and out.max() <= 1

    def test_shift_zero_is_copy(self, batch):
        out = random_shift(batch, np.random.default_rng(0), max_shift=0)
        np.testing.assert_array_equal(out, batch)
        assert out is not batch

    def test_brightness_stays_in_unit_range(self, batch):
        out = brightness_jitter(batch, np.random.default_rng(0),
                                strength=0.5)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_augment_batch_deterministic_per_seed(self, batch):
        a = augment_batch(batch, np.random.default_rng(7))
        b = augment_batch(batch, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_augment_batch_changes_images(self, batch):
        out = augment_batch(batch, np.random.default_rng(3))
        assert not np.array_equal(out, batch)
