"""Shared fixtures: tiny networks, datasets and devices for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.device.spec import DeviceSpec
from repro.nn import (
    Add,
    BatchNorm,
    Conv2D,
    Dense,
    GlobalAvgPool,
    MaxPool2D,
    Network,
    ReLU,
    Softmax,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def make_tiny_net(name: str = "tiny", num_classes: int = 5,
                  blocks: int = 3) -> Network:
    """A small block-structured CNN: stem + `blocks` conv blocks + head.

    Mirrors the zoo conventions (block_id tags, stem/feature/head roles,
    residual connection in block 2) so trim/netcut tests can run on it
    without pretraining a real zoo network.
    """
    net = Network(name, (8, 8, 3))
    net.add("stem_conv", Conv2D(4, 3, stride=1), block_id="stem", role="stem")
    net.add("stem_relu", ReLU(), block_id="stem", role="stem")
    prev = "stem_relu"
    channels = 4
    for b in range(1, blocks + 1):
        net.add(f"b{b}_conv", Conv2D(channels, 3, stride=1),
                inputs=prev, block_id=f"b{b}")
        net.add(f"b{b}_bn", BatchNorm(), block_id=f"b{b}")
        net.add(f"b{b}_relu", ReLU(), block_id=f"b{b}")
        if b == 2:
            net.add(f"b{b}_add", Add(), inputs=[prev, f"b{b}_relu"],
                    block_id=f"b{b}")
            prev = f"b{b}_add"
        else:
            prev = f"b{b}_relu"
    net.add("pool", MaxPool2D(2), inputs=prev, block_id=f"b{blocks}")
    net.add("gap", GlobalAvgPool(), role="head")
    net.add("logits", Dense(num_classes), role="head")
    net.add("probs", Softmax(), role="head")
    return net.build(0)


@pytest.fixture
def tiny_net():
    return make_tiny_net()


@pytest.fixture
def tiny_device():
    return DeviceSpec(
        name="test-device",
        peak_gflops=10.0,
        bandwidth_gbps=1.0,
        launch_overhead_us=5.0,
        occupancy_flops=1e4,
        noise_std=0.005,
        straggler_prob=0.0,
        event_overhead_us=2.0,
    )


@pytest.fixture
def small_images(rng):
    return rng.normal(size=(6, 8, 8, 3)).astype(np.float32)


@pytest.fixture
def soft_labels(rng):
    y = np.abs(rng.normal(size=(6, 5))).astype(np.float32)
    return y / y.sum(axis=1, keepdims=True)
