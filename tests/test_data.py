"""Tests for the synthetic datasets: renderer, SynthImageNet, HANDS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    GRASP_TYPES,
    SHAPE_FAMILIES,
    SYNTH_IMAGENET_CLASSES,
    TEXTURES,
    ObjectParams,
    grasp_affinities,
    grasp_distribution,
    make_hands_dataset,
    make_synth_imagenet,
    render_object,
    sample_object,
)


class TestRenderer:
    def test_output_range_and_dtype(self, rng):
        params = sample_object(rng)
        img = render_object(params, 32, rng)
        assert img.shape == (32, 32, 3)
        assert img.dtype == np.float32
        assert img.min() >= 0.0 and img.max() <= 1.0

    @pytest.mark.parametrize("family", SHAPE_FAMILIES)
    def test_all_families_render(self, family, rng):
        params = sample_object(rng, family=family)
        img = render_object(params, 24, rng)
        assert np.isfinite(img).all()

    @pytest.mark.parametrize("texture", TEXTURES)
    def test_all_textures_render(self, texture, rng):
        params = sample_object(rng, texture=texture)
        img = render_object(params, 24, rng)
        assert np.isfinite(img).all()

    def test_object_visible_against_background(self, rng):
        """Center pixels (object) must differ from the corners (background)."""
        params = ObjectParams("sphere", 0.35, 1.0, 0.0, 0.1, "plain")
        img = render_object(params, 32, rng, noise=0.0)
        center = img[14:18, 14:18].mean(axis=(0, 1))
        corner = img[:3, :3].mean(axis=(0, 1))
        assert np.abs(center - corner).max() > 0.05

    def test_unknown_family_raises(self, rng):
        params = ObjectParams("pyramid", 0.3, 1.0, 0.0, 0.5, "plain")
        with pytest.raises(ValueError, match="family"):
            render_object(params, 16, rng)

    def test_bigger_objects_cover_more(self, rng):
        small = ObjectParams("sphere", 0.1, 1.0, 0.0, 0.0, "plain")
        big = ObjectParams("sphere", 0.4, 1.0, 0.0, 0.0, "plain")
        img_s = render_object(small, 32, np.random.default_rng(1), noise=0.0)
        img_b = render_object(big, 32, np.random.default_rng(1), noise=0.0)
        # variance of the image grows with the object footprint
        assert img_b.std() > img_s.std()


class TestSampleObject:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_parameters_in_range(self, seed):
        params = sample_object(np.random.default_rng(seed))
        assert params.family in SHAPE_FAMILIES
        assert params.texture in TEXTURES
        assert 0.05 <= params.size <= 0.45
        assert params.aspect >= 0.9

    def test_fixed_family_respected(self, rng):
        assert sample_object(rng, family="card").family == "card"


class TestDatasetContainer:
    def test_split_partitions(self, rng):
        data = make_hands_dataset(40, seed=3)
        train, test = data.split(0.75, rng=0)
        assert len(train) == 30 and len(test) == 10
        assert train.num_classes == 5

    def test_split_no_overlap(self):
        data = make_hands_dataset(30, seed=3)
        train, test = data.split(0.5, rng=0)
        train_keys = {img.tobytes() for img in train.x}
        test_keys = {img.tobytes() for img in test.x}
        assert not (train_keys & test_keys)

    def test_subset(self):
        data = make_hands_dataset(20, seed=3)
        sub = data.subset(np.array([0, 5, 7]))
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.x[1], data.x[5])

    def test_batches_cover_everything(self):
        data = make_hands_dataset(25, seed=3)
        seen = sum(x.shape[0] for x, _ in data.batches(8))
        assert seen == 25

    def test_batches_shuffled_with_rng(self, rng):
        data = make_hands_dataset(25, seed=3)
        xb, _ = next(iter(data.batches(25, rng=rng)))
        assert not np.array_equal(xb, data.x)


class TestSynthImageNet:
    def test_twenty_classes(self):
        assert len(SYNTH_IMAGENET_CLASSES) == 20

    def test_one_hot_labels(self):
        data = make_synth_imagenet(40, seed=0)
        assert data.y.shape == (40, 20)
        np.testing.assert_allclose(data.y.sum(axis=1), 1.0)
        assert set(np.unique(data.y)) == {0.0, 1.0}

    def test_balanced_classes(self):
        data = make_synth_imagenet(200, seed=0)
        counts = data.y.sum(axis=0)
        np.testing.assert_allclose(counts, 10.0)

    def test_deterministic(self):
        a = make_synth_imagenet(20, seed=5)
        b = make_synth_imagenet(20, seed=5)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.y, b.y)


class TestHands:
    def test_probabilistic_labels(self):
        data = make_hands_dataset(50, seed=1)
        assert data.y.shape == (50, 5)
        np.testing.assert_allclose(data.y.sum(axis=1), 1.0, rtol=1e-5)
        # labels are soft: most rows are NOT one-hot
        assert (data.y.max(axis=1) < 0.999).mean() > 0.5

    def test_class_names(self):
        data = make_hands_dataset(5, seed=1)
        assert data.class_names == GRASP_TYPES

    def test_deterministic(self):
        a = make_hands_dataset(20, seed=9)
        b = make_hands_dataset(20, seed=9)
        np.testing.assert_array_equal(a.x, b.x)

    def test_affinity_heuristics(self):
        """Grasp preferences follow the geometry rules the dataset encodes."""
        small_blob = ObjectParams("blob", 0.09, 1.0, 0.0, 0.5, "plain")
        assert np.argmax(grasp_affinities(small_blob)) == 4  # palmar pinch

        big_sphere = ObjectParams("sphere", 0.4, 1.0, 0.0, 0.5, "plain")
        assert np.argmax(grasp_affinities(big_sphere)) == 2  # power sphere

        cylinder = ObjectParams("cylinder", 0.3, 2.5, 0.0, 0.5, "plain")
        assert np.argmax(grasp_affinities(cylinder)) == 1  # medium wrap

        big_card = ObjectParams("card", 0.42, 1.0, 0.0, 0.5, "plain")
        assert np.argmax(grasp_affinities(big_card)) == 0  # open palm

    def test_distribution_noise_free_is_deterministic(self):
        params = ObjectParams("sphere", 0.3, 1.0, 0.0, 0.5, "plain")
        a = grasp_distribution(params, rng=None)
        b = grasp_distribution(params, rng=None)
        np.testing.assert_array_equal(a, b)
        assert a.sum() == pytest.approx(1.0, rel=1e-5)

    def test_jitter_perturbs_but_preserves_mode(self, rng):
        params = ObjectParams("sphere", 0.4, 1.0, 0.0, 0.5, "plain")
        clean = grasp_distribution(params, rng=None)
        noisy = grasp_distribution(params, rng=rng, jitter=100.0)
        assert not np.allclose(clean, noisy)
        assert np.argmax(clean) == np.argmax(noisy)
