"""Tests for repro.nn.compile: fused schedule vs. the interpreted walk.

Covers the three contracts the compiled forward path makes: numerical
parity with the interpreter (every zoo network, batched and single
sample), transparent plan invalidation (weight reassignment, structure
edits, clones), and the fallback conditions (hooks, training, capture)
under which forwards must route through the interpreted walk.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import make_tiny_net
from repro.nn.compile import (
    ANCHOR_TYPES,
    FUSABLE_TYPES,
    CompiledNetwork,
    ExecutionPlan,
    compile_network,
    fuse_kernels,
    state_signature,
)
from repro.nn.kernels import KERNEL_TYPES, FallbackKernel, build_kernel
from repro.zoo import NETWORKS, build_network

RTOL, ATOL = 1e-4, 1e-5


def _batch(net, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n,) + net.input_shape).astype(np.float32)


class TestFusionDuality:
    """Every pattern the latency model fuses must run as fused compute."""

    def test_every_anchor_type_has_a_compute_kernel(self):
        for anchor in ANCHOR_TYPES:
            cls = KERNEL_TYPES.get(anchor)
            assert cls is not None, f"no compute kernel for {anchor.__name__}"
            assert cls is not FallbackKernel
            assert cls.fused, f"{anchor.__name__} kernel is not fused compute"

    def test_every_fusable_type_fuses_behind_a_conv(self, tiny_net):
        # a conv followed by each fusable tail must build a fused kernel
        from repro.nn.layers import Conv2D, Dropout

        conv = None
        for node in tiny_net.nodes.values():
            if isinstance(node.layer, Conv2D):
                conv = node
                break
        in_shape = tiny_net.in_shapes(conv.name)[0]
        out_shape = tiny_net.shape_of(conv.name)
        for tail_type in FUSABLE_TYPES:
            tail = tail_type(0.5) if tail_type is Dropout else tail_type()
            tail.build([out_shape], np.random.default_rng(0))
            kernel = build_kernel(0, conv.layer, [tail], in_shape, out_shape)
            assert kernel.fused, (
                f"Conv2D+{tail_type.__name__} fell back to the interpreter "
                "but repro.device.fusion prices it as one fused kernel")

    def test_device_fusion_is_the_same_object(self):
        # single source of truth: the latency model re-exports these
        from repro.device import fusion as device_fusion

        assert device_fusion.fuse_kernels is fuse_kernels
        assert device_fusion.ANCHOR_TYPES is ANCHOR_TYPES
        assert device_fusion.FUSABLE_TYPES is FUSABLE_TYPES

    def test_compiled_steps_match_fusion_groups(self, tiny_net):
        plan = ExecutionPlan(tiny_net)
        groups = fuse_kernels(tiny_net, enabled=True)
        assert [s.node_names for s in plan.steps] == [
            g.node_names for g in groups]


class TestZooParity:
    """Compiled output == interpreted output on every zoo network."""

    @pytest.mark.parametrize("name", NETWORKS)
    def test_batched_parity(self, name):
        net = build_network(name).build(0)
        x = _batch(net, 2)
        interp = net.forward(x)
        net.compile()
        assert net.compiled
        compiled = net.forward(x)
        np.testing.assert_allclose(compiled, interp, rtol=RTOL, atol=ATOL)

    @pytest.mark.parametrize("name", NETWORKS)
    def test_single_sample_parity(self, name):
        net = build_network(name).build(0)
        x = _batch(net, 1)[0]
        interp = net.forward_one(x)
        net.compile()
        compiled = net.forward_one(x)
        assert compiled.shape == interp.shape      # batch axis stays off
        np.testing.assert_allclose(compiled, interp, rtol=RTOL, atol=ATOL)


class TestCompiledExecution:
    def test_forward_batch_routes_through_plan(self, tiny_net):
        samples = list(_batch(tiny_net, 4))
        interp = tiny_net.forward_batch(samples)
        tiny_net.compile()
        compiled = tiny_net.forward_batch(samples)
        np.testing.assert_allclose(compiled, interp, rtol=RTOL, atol=ATOL)

    def test_output_is_not_an_arena_view(self, tiny_net):
        plan = tiny_net.compile()
        x = _batch(tiny_net, 2)
        first = plan.run(x)
        snapshot = first.copy()
        plan.run(_batch(tiny_net, 2, seed=1))      # would overwrite a view
        np.testing.assert_array_equal(first, snapshot)

    def test_arenas_cached_per_batch_size(self, tiny_net):
        plan = tiny_net.compile()
        plan.run(_batch(tiny_net, 2))
        plan.run(_batch(tiny_net, 3))
        assert set(plan._arenas) == {2, 3}
        assert plan.arena_bytes > 0
        a2 = plan._arenas[2]
        plan.run(_batch(tiny_net, 2))
        assert plan._arenas[2] is a2               # reused, not rebuilt

    def test_arena_lru_is_bounded(self, tiny_net):
        plan = tiny_net.compile()
        for n in range(1, CompiledNetwork.MAX_ARENAS + 3):
            plan.run(_batch(tiny_net, n))
        assert len(plan._arenas) == CompiledNetwork.MAX_ARENAS

    def test_run_rejects_unbatched_input(self, tiny_net):
        plan = tiny_net.compile()
        with pytest.raises(ValueError, match="batched"):
            plan.run(np.zeros(tiny_net.input_shape, dtype=np.float32))

    def test_describe_lists_every_step(self, tiny_net):
        plan = tiny_net.compile()
        text = plan.describe()
        for step in plan.plan.steps:
            assert step.name in text


class TestPlanInvalidation:
    def test_weight_reassignment_invalidates(self, tiny_net):
        tiny_net.compile()
        x = _batch(tiny_net, 2)
        before = tiny_net.forward(x)
        p = tiny_net.nodes["logits"].layer.params["w"]
        p.value = p.value * 0.5                    # setter bumps the version
        assert not tiny_net._compiled.valid
        after = tiny_net.forward(x)                # transparent recompile
        assert tiny_net._compiled.valid
        assert not np.allclose(after, before)
        tiny_net.uncompile()
        np.testing.assert_allclose(after, tiny_net.forward(x),
                                   rtol=RTOL, atol=ATOL)

    def test_load_state_dict_invalidates(self, tiny_net):
        tiny_net.compile()
        sig = state_signature(tiny_net)
        state = {k: v * 2.0 for k, v in tiny_net.state_dict().items()}
        tiny_net.load_state_dict(state)
        assert state_signature(tiny_net) != sig
        assert not tiny_net._compiled.valid

    def test_inplace_writes_escape_tracking(self, tiny_net):
        # documented limitation: raw array writes need compile(force=True)
        tiny_net.compile()
        p = tiny_net.nodes["logits"].layer.params["w"]
        p.value[...] = 0.0
        assert tiny_net._compiled.valid            # signature cannot see it
        plan = tiny_net.compile(force=True)
        out = plan.run(_batch(tiny_net, 2))
        tiny_net.uncompile()
        np.testing.assert_allclose(out, tiny_net.forward(_batch(tiny_net, 2)),
                                   rtol=RTOL, atol=ATOL)

    def test_clones_start_uncompiled(self, tiny_net):
        tiny_net.compile()
        assert not tiny_net.copy().compiled
        assert not tiny_net.subgraph("b2_add").compiled

    def test_training_updates_bn_stats_and_invalidates(self, tiny_net):
        tiny_net.compile()
        tiny_net.forward(_batch(tiny_net, 4), training=True)
        assert not tiny_net._compiled.valid
        x = _batch(tiny_net, 2)
        compiled = tiny_net.forward(x)             # recompiles with new stats
        tiny_net.uncompile()
        np.testing.assert_allclose(compiled, tiny_net.forward(x),
                                   rtol=RTOL, atol=ATOL)


class TestInterpreterFallback:
    def test_hooks_fall_back_to_interpreted_walk(self, tiny_net):
        tiny_net.compile()
        seen = []
        handle = tiny_net.register_forward_hook(
            lambda net, node, ins, out: seen.append(node.name))
        x = _batch(tiny_net, 2)
        hooked = tiny_net.forward(x)
        assert len(seen) == len(tiny_net.nodes)    # interpreter ran
        tiny_net.remove_hook(handle)
        seen.clear()
        compiled = tiny_net.forward(x)
        assert not seen                            # compiled path again
        np.testing.assert_allclose(hooked, compiled, rtol=RTOL, atol=ATOL)

    def test_capture_falls_back(self, tiny_net):
        tiny_net.compile()
        out, acts = tiny_net.forward(_batch(tiny_net, 2), capture=["b1_relu"])
        assert "b1_relu" in acts

    def test_compile_returns_cached_plan(self, tiny_net):
        plan = tiny_net.compile()
        assert tiny_net.compile() is plan
        assert compile_network(tiny_net) is not plan


class TestForwardOne:
    def test_rejects_batched_input(self, tiny_net):
        with pytest.raises(ValueError, match="forward_one expects"):
            tiny_net.forward_one(_batch(tiny_net, 2))

    def test_rejects_wrong_shape(self, tiny_net):
        with pytest.raises(ValueError, match="forward_one expects"):
            tiny_net.forward_one(np.zeros((4, 4, 3), dtype=np.float32))

    def test_matches_implicit_single_sample_path(self, tiny_net):
        x = _batch(tiny_net, 1)[0]
        implicit = tiny_net.forward(x)             # legacy shape sniffing
        explicit = tiny_net.forward_one(x)
        np.testing.assert_array_equal(implicit, explicit)

    def test_capture_stays_unbatched(self, tiny_net):
        x = _batch(tiny_net, 1)[0]
        out, acts = tiny_net.forward_one(x, capture=["b1_relu"])
        assert out.shape == tiny_net.shape_of(tiny_net.output_name)
        assert acts["b1_relu"].shape == tiny_net.shape_of("b1_relu")
