"""Training-dynamics tests: schedules, dropout, branched backprop."""

import numpy as np

from repro.nn import (
    Adam,
    SGD,
    Concat,
    Conv2D,
    Dense,
    Dropout,
    GlobalAvgPool,
    Network,
    ReLU,
    StepDecay,
)
from repro.nn.losses import softmax_cross_entropy


def _soft_labels(rng, n, k):
    y = np.abs(rng.normal(size=(n, k))).astype(np.float32) + 1e-3
    return y / y.sum(axis=1, keepdims=True)


class TestSchedulesInTraining:
    def test_step_decay_applied_over_steps(self, rng):
        net = Network("sched", (6,))
        net.add("fc", Dense(3))
        net.build(0)
        x = rng.normal(size=(8, 6)).astype(np.float32)
        y = _soft_labels(rng, 8, 3)
        opt = SGD(StepDecay(0.1, every=5, factor=0.1), momentum=0.0)
        deltas = []
        for step in range(10):
            net.zero_grad()
            net.forward_backward(x, loss_fn=softmax_cross_entropy, y=y,
                                 training=True)
            before = net.nodes["fc"].layer.params["w"].value.copy()
            opt.step(net.parameters())
            after = net.nodes["fc"].layer.params["w"].value
            deltas.append(float(np.abs(after - before).max()))
        # updates shrink by ~10x after the decay boundary
        assert np.mean(deltas[5:]) < 0.5 * np.mean(deltas[:5])


class TestDropoutTraining:
    def _net(self, rate):
        net = Network("drop", (4, 4, 2))
        net.add("conv", Conv2D(4, 3))
        net.add("relu", ReLU())
        net.add("gap", GlobalAvgPool())
        net.add("dropout", Dropout(rate, seed=1))
        net.add("fc", Dense(3))
        return net.build(0)

    def test_training_forward_stochastic_inference_not(self, rng):
        net = self._net(0.5)
        x = rng.normal(size=(8, 4, 4, 2)).astype(np.float32)
        a = net.forward(x, training=True)
        b = net.forward(x, training=True)
        assert not np.allclose(a, b)  # different dropout masks
        c = net.forward(x, training=False)
        d = net.forward(x, training=False)
        np.testing.assert_array_equal(c, d)

    def test_backward_respects_mask(self, rng):
        net = self._net(0.5)
        x = rng.normal(size=(4, 4, 4, 2)).astype(np.float32)
        y = _soft_labels(rng, 4, 3)
        net.zero_grad()
        net.forward_backward(x, loss_fn=softmax_cross_entropy, y=y,
                             training=True)
        # gradients flow and are finite despite the mask
        grads = [p.grad for _, p in net.parameters()]
        assert all(np.isfinite(g).all() for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)


class TestBranchedBackprop:
    def test_concat_network_trains(self, rng):
        """A two-branch concat network must backprop through both paths."""
        net = Network("branchy", (6, 6, 2))
        net.add("a", Conv2D(3, 3), inputs="input")
        net.add("ra", ReLU())
        net.add("b", Conv2D(3, 5), inputs="input")
        net.add("rb", ReLU())
        net.add("cat", Concat(), inputs=["ra", "rb"])
        net.add("gap", GlobalAvgPool())
        net.add("fc", Dense(4))
        net.build(0)
        x = rng.normal(size=(6, 6, 6, 2)).astype(np.float32)
        y = _soft_labels(rng, 6, 4)
        opt = Adam(5e-3)
        first = None
        for _ in range(40):
            net.zero_grad()
            _, loss = net.forward_backward(
                x, loss_fn=softmax_cross_entropy, y=y, training=True)
            opt.step(net.parameters())
            first = first if first is not None else loss
        assert loss < first
        # both branches received gradient (weights moved)
        for conv in ("a", "b"):
            grad = net.nodes[conv].layer.params["w"].grad
            assert np.abs(grad).max() > 0

    def test_shared_input_gradient_accumulates(self, rng):
        """The input feeds two branches; its consumers' gradients add."""
        from repro.nn.gradcheck import check_network

        net = Network("shared", (5, 5, 1))
        net.add("a", Conv2D(2, 3), inputs="input")
        net.add("b", Conv2D(2, 3), inputs="input")
        net.add("cat", Concat(), inputs=["a", "b"])
        net.add("gap", GlobalAvgPool())
        net.add("fc", Dense(2))
        net.build(0)
        x = rng.normal(size=(3, 5, 5, 1)).astype(np.float32)
        y = _soft_labels(rng, 3, 2)
        report = check_network(net, x, softmax_cross_entropy, y)
        assert report.passed, str(report)
