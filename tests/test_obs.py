"""Tests for the observability stack (repro.obs).

Covers the forward hooks on Network, the hook-driven LayerProfiler and its
agreement with the device's own profiling chain, request tracing through a
served trace (JSONL determinism, Chrome-trace schema, span accounting),
the estimator-drift monitor, the unified metrics registry, and the
histogram/snapshot regressions in repro.serve.metrics.
"""

import json
import math
import os
import subprocess
import sys

import numpy as np
import pytest

from conftest import make_tiny_net
from repro.device import profile_network, xavier
from repro.estimators import ProfilerEstimator
from repro.obs import (
    DriftMonitor,
    LayerProfiler,
    MetricsRegistry,
    Span,
    TraceBuffer,
    Tracer,
    chrome_trace,
    profile_forward,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.serve import (
    LatencyHistogram,
    Server,
    ServerConfig,
    ServerMetrics,
    TRNLadder,
    poisson_trace,
)
from repro.trim import enumerate_blockwise, removed_node_set
from repro.zoo import build_network


@pytest.fixture(scope="module")
def device():
    from repro.device.spec import DeviceSpec

    return DeviceSpec(
        name="test-device", peak_gflops=10.0, bandwidth_gbps=1.0,
        launch_overhead_us=5.0, occupancy_flops=1e4, noise_std=0.005,
        straggler_prob=0.0, event_overhead_us=2.0)


@pytest.fixture(scope="module")
def ladder(device):
    return TRNLadder.from_base(make_tiny_net(), device, num_classes=5)


# ---------------------------------------------------------------------------
# forward hooks on Network
# ---------------------------------------------------------------------------
class TestForwardHooks:
    def test_pre_and_post_fire_per_node_in_execution_order(self, tiny_net):
        events = []
        tiny_net.register_forward_pre_hook(
            lambda net, node, ins: events.append(("pre", node.name)))
        tiny_net.register_forward_hook(
            lambda net, node, ins, out: events.append(("post", node.name)))
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        tiny_net.forward(x)
        names = [n for _, n in events[::2]]
        assert names == [n for _, n in events[1::2]]  # pre/post pair up
        assert all(kind == "pre" for kind, _ in events[::2])
        assert all(kind == "post" for kind, _ in events[1::2])
        assert names == list(tiny_net.nodes)          # topological order
        assert names[-1] == tiny_net.output_name

    def test_post_hook_sees_the_node_output(self, tiny_net):
        seen = {}
        tiny_net.register_forward_hook(
            lambda net, node, ins, out: seen.setdefault(node.name, out))
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        y = tiny_net.forward(x)
        # the hook sees the raw node output (with the internal batch axis)
        np.testing.assert_array_equal(
            np.squeeze(seen[tiny_net.output_name]), np.squeeze(y))

    def test_remove_hook_detaches(self, tiny_net):
        calls = []
        handle = tiny_net.register_forward_hook(
            lambda net, node, ins, out: calls.append(node.name))
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        tiny_net.forward(x)
        n = len(calls)
        assert n > 0
        tiny_net.remove_hook(handle)
        assert not tiny_net.has_hooks
        tiny_net.forward(x)
        assert len(calls) == n

    def test_copy_and_subgraph_start_with_fresh_hooks(self, tiny_net):
        tiny_net.register_forward_hook(lambda *a: None)
        clone = tiny_net.copy()
        sub = tiny_net.subgraph("b2_add")
        assert tiny_net.has_hooks
        assert not clone.has_hooks
        assert not sub.has_hooks


# ---------------------------------------------------------------------------
# LayerProfiler
# ---------------------------------------------------------------------------
class TestLayerProfiler:
    def test_requires_built_network(self, device):
        from repro.nn import Conv2D, Network

        net = Network("unbuilt", (8, 8, 3))
        net.add("c", Conv2D(4, 3))
        with pytest.raises(RuntimeError, match="built"):
            LayerProfiler(net, device)

    def test_table_requires_recorded_runs(self, tiny_net, device):
        prof = LayerProfiler(tiny_net, device, warmup=5)
        with pytest.raises(RuntimeError, match="warm-up"):
            prof.table()

    def test_recorded_total_close_to_end_to_end(self, tiny_net, device):
        """Table sum ≈ e2e forward time, inflated only by event overhead."""
        table = profile_forward(tiny_net, device, runs=40, warmup=200,
                                rng=0)
        overhead = device.event_overhead_ms() * len(table.records)
        assert table.recorded_total_ms > table.end_to_end_ms
        gap = table.recorded_total_ms - table.end_to_end_ms
        assert gap == pytest.approx(overhead, rel=0.05)

    def test_warmup_runs_are_discarded(self, tiny_net, device):
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        with LayerProfiler(tiny_net, device, rng=0, warmup=3) as prof:
            for _ in range(5):
                tiny_net.forward(x)
        assert prof.runs == 5
        assert prof.recorded_runs == 2

    def test_warm_up_jump_matches_real_warmup_runs(self, tiny_net, device):
        """Skipping the ramp via warm_up() ≡ paying for the forwards."""
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        with LayerProfiler(tiny_net, device, rng=0, warmup=200) as prof:
            prof.warm_up()
            for _ in range(20):
                tiny_net.forward(x)
        jumped = profile_forward(tiny_net, device, runs=20, warmup=200,
                                 rng=0)
        assert prof.table().end_to_end_ms == \
            pytest.approx(jumped.end_to_end_ms, rel=0.02)

    def test_detach_stops_accumulation(self, tiny_net, device):
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        prof = LayerProfiler(tiny_net, device, rng=0, warmup=0).attach()
        tiny_net.forward(x)
        prof.detach()
        tiny_net.forward(x)
        assert prof.recorded_runs == 1
        assert not tiny_net.has_hooks

    def test_fixed_seed_is_deterministic(self, tiny_net, device):
        t1 = profile_forward(tiny_net, device, runs=10, warmup=50, rng=7)
        t2 = profile_forward(tiny_net, device, runs=10, warmup=50, rng=7)
        assert t1 == t2

    def test_snapshot_reports_progress(self, tiny_net, device):
        table = None
        prof = LayerProfiler(tiny_net, device, rng=0, warmup=0)
        snap = prof.snapshot()
        assert snap["recorded_runs"] == 0 and "end_to_end_ms" not in snap
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        with prof:
            tiny_net.forward(x)
        snap = prof.snapshot()
        assert snap["recorded_runs"] == 1
        assert snap["recorded_total_ms"] > snap["end_to_end_ms"] > 0

    @pytest.mark.parametrize("name", ["mobilenet_v1_0.25", "resnet50",
                                      "densenet121"])
    def test_obs_table_matches_device_estimator_on_zoo(self, name):
        """Acceptance: ratio-form estimate from the hooked table lands
        within 5% of the estimate from repro.device's own profiler."""
        spec = xavier()
        net = build_network(name).build(0)
        obs_table = profile_forward(net, spec, runs=40, rng=0)
        dev_table = profile_network(net, spec)
        cuts = enumerate_blockwise(net)
        for cut in (cuts[1], cuts[len(cuts) // 2], cuts[-1]):
            removed = removed_node_set(net, cut.cut_node)
            est_obs = ProfilerEstimator(net, obs_table).estimate(removed)
            est_dev = ProfilerEstimator(net, dev_table).estimate(removed)
            assert est_obs == pytest.approx(est_dev, rel=0.05), cut.cut_node

    def test_describe_mentions_overhead_artefact(self, tiny_net, device):
        table = profile_forward(tiny_net, device, runs=10, warmup=50, rng=0)
        text = table.describe(top=3)
        assert tiny_net.name in text
        assert "recorded total" in text and "end-to-end" in text
        # header + column row + 3 kernels + footer
        assert len(text.splitlines()) == 6


# ---------------------------------------------------------------------------
# tracing primitives
# ---------------------------------------------------------------------------
class TestTracer:
    def test_buffer_bounded_with_dropped_count(self):
        buf = TraceBuffer(capacity=3)
        for i in range(5):
            buf.append(Span("e", "t", float(i)))
        assert len(buf) == 3
        assert buf.dropped == 2
        assert [s.ts_ms for s in buf] == [2.0, 3.0, 4.0]

    def test_buffer_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_counts_survive_eviction(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.instant("enqueue", "queue", float(i))
        assert tracer.count("enqueue") == 5
        assert len(tracer.spans("enqueue")) == 2
        snap = tracer.snapshot()
        assert snap == {"buffered": 2, "dropped": 3,
                        "by_name": {"enqueue": 5}}

    def test_clear_resets_everything(self):
        tracer = Tracer()
        tracer.span("forward", "serve", 1.0, 0.5, rid=0)
        tracer.clear()
        assert tracer.spans() == [] and tracer.count("forward") == 0

    def test_jsonl_round_trips(self):
        tracer = Tracer()
        tracer.instant("admit", "serve", 1.5, rid=3)
        tracer.span("forward", "serve", 1.5, 0.25, size=2)
        lines = to_jsonl(tracer).splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"name": "admit", "cat": "serve", "ts_ms": 1.5,
                         "dur_ms": 0.0, "rid": 3}
        assert json.loads(lines[1])["args"] == {"size": 2}


class TestChromeTrace:
    def test_schema_validates(self):
        tracer = Tracer()
        tracer.instant("enqueue", "queue", 0.5, rid=0)
        tracer.span("forward", "serve", 1.0, 0.3, rung="r0")
        doc = chrome_trace(tracer)
        json.dumps(doc)                       # serializable
        events = doc["traceEvents"]
        assert all({"name", "ph", "pid", "tid"} <= set(e) for e in events)
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "i", "M"}
        complete = [e for e in events if e["ph"] == "X"]
        assert complete[0]["dur"] == pytest.approx(300.0)   # 0.3 ms in µs
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["ts"] == pytest.approx(500.0)

    def test_categories_become_thread_tracks(self):
        tracer = Tracer()
        tracer.instant("enqueue", "queue", 0.0)
        tracer.instant("respond", "serve", 1.0)
        doc = chrome_trace(tracer)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["name"] == "thread_name"}
        assert names == {"queue", "serve"}


# ---------------------------------------------------------------------------
# tracing + drift through a served trace
# ---------------------------------------------------------------------------
class TestTracedServing:
    def _run(self, ladder, seed=0, requests=150, capacity=65536):
        rate = 1.3e3 / ladder.rungs[0].estimate_ms(1)
        deadline = 1.2 * ladder.rungs[0].estimate_ms(1)
        trace = poisson_trace(requests, rate, deadline, rng=seed)
        tracer = Tracer(capacity=capacity)
        drift = DriftMonitor()
        server = Server(ladder, ServerConfig(deadline_ms=deadline,
                                             execute=False, seed=seed),
                        tracer=tracer, drift=drift)
        result = server.run_trace(trace)
        return result, tracer, drift

    def test_span_accounting_matches_metrics(self, ladder):
        result, tracer, _ = self._run(ladder)
        c = result.metrics.counters
        assert tracer.count("enqueue") == c["admitted"].value
        assert tracer.count("admit") == c["admitted"].value
        assert tracer.count("respond") == c["admitted"].value \
            == c["completed"].value
        assert tracer.count("drop") == c["rejected"].value
        assert tracer.count("batch") == tracer.count("forward") \
            == c["batches"].value
        transitions = c["degrade_events"].value + c["upgrade_events"].value
        assert tracer.count("degrade") + tracer.count("upgrade") \
            == transitions

    def test_drops_are_traced_with_reason(self, ladder):
        # rate far above capacity: admission control must reject some
        full = ladder.rungs[0].estimate_ms(1)
        trace = poisson_trace(150, 40e3 / full, 0.9 * full, rng=0)
        tracer = Tracer()
        server = Server(ladder, ServerConfig(deadline_ms=0.9 * full,
                                             execute=False, seed=0),
                        tracer=tracer)
        result = server.run_trace(trace)
        rejected = result.metrics.counters["rejected"].value
        assert rejected > 0
        drops = tracer.spans("drop")
        assert len(drops) == rejected
        assert all(s.args["reason"] in ("unmeetable-deadline", "queue-full")
                   for s in drops)

    def test_same_seed_runs_export_identical_jsonl(self, ladder, tmp_path):
        _, t1, _ = self._run(ladder, seed=3)
        _, t2, _ = self._run(ladder, seed=3)
        assert to_jsonl(t1) == to_jsonl(t2)
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert write_jsonl(t1, p1) == write_jsonl(t2, p2) > 0
        assert p1.read_bytes() == p2.read_bytes()

    def test_chrome_export_of_served_trace(self, ladder, tmp_path):
        _, tracer, _ = self._run(ladder)
        path = tmp_path / "serve.trace.json"
        n = write_chrome_trace(tracer, path)
        assert n == len(tracer.spans())
        doc = json.loads(path.read_text())
        # one event per span + process metadata + one per category track
        cats = {s.cat for s in tracer.spans()}
        assert len(doc["traceEvents"]) == n + 1 + len(cats)

    def test_unbiased_estimator_stays_silent(self, ladder):
        _, _, drift = self._run(ladder)
        assert drift.observations > 0
        assert not drift.drifting
        assert len(drift.events) == 0


# ---------------------------------------------------------------------------
# drift monitor
# ---------------------------------------------------------------------------
class TestDriftMonitor:
    def test_fires_on_biased_estimator(self):
        mon = DriftMonitor(threshold=0.25, window=16, min_observations=8)
        rng = np.random.default_rng(0)
        event = None
        for i in range(20):
            obs = 1.5 * (1 + rng.normal(0, 0.01))   # 50% under-estimate
            event = event or mon.observe(1.0, obs, time_ms=float(i),
                                         rung="r0")
        assert event is not None
        assert event.rel_error > 0.25
        assert event.bias == pytest.approx(0.5, abs=0.05)
        assert event.rung == "r0"
        assert mon.drifting

    def test_silent_on_unbiased_noise(self):
        mon = DriftMonitor(threshold=0.25, window=16, min_observations=8)
        rng = np.random.default_rng(0)
        for i in range(200):
            assert mon.observe(1.0, 1.0 + rng.normal(0, 0.02)) is None
        assert not mon.drifting
        assert mon.rolling_error < 0.05

    def test_cooldown_spaces_events(self):
        mon = DriftMonitor(threshold=0.1, window=8, min_observations=4,
                           cooldown=8)
        for i in range(32):
            mon.observe(1.0, 2.0, time_ms=float(i))
        assert len(mon.events) == 4     # every `cooldown` observations

    def test_needs_min_observations(self):
        mon = DriftMonitor(threshold=0.1, window=32, min_observations=16)
        for _ in range(15):
            assert mon.observe(1.0, 3.0) is None
        assert mon.observe(1.0, 3.0) is not None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DriftMonitor(threshold=0.0)
        with pytest.raises(ValueError):
            DriftMonitor(window=0)
        with pytest.raises(ValueError):
            DriftMonitor(events_capacity=0)

    def test_degenerate_observations_skip_and_count(self):
        """A zero/NaN estimate must not crash the serving hot path."""
        mon = DriftMonitor(threshold=0.1, window=8, min_observations=2)
        for bad in [(0.0, 1.0), (-1.0, 1.0), (float("nan"), 1.0),
                    (float("inf"), 1.0), (1.0, float("nan")),
                    (1.0, float("inf"))]:
            assert mon.observe(*bad) is None
        assert mon.observations == 0           # nothing entered the window
        assert mon.skipped == 6
        assert mon.snapshot()["skipped"] == 6
        # good observations still work after the degenerate ones
        for i in range(4):
            mon.observe(1.0, 2.0, time_ms=float(i))
        assert mon.drifting
        assert mon.observations == 4

    def test_events_are_bounded(self):
        """A sustained miscalibration cannot grow events without bound."""
        mon = DriftMonitor(threshold=0.1, window=4, min_observations=2,
                           cooldown=2, events_capacity=5)
        for i in range(100):
            mon.observe(1.0, 2.0, time_ms=float(i))
        assert len(mon.events) == 5            # capped by events_capacity
        assert mon.events_total == 50          # first at obs 2, then every 2
        assert mon.snapshot()["events_total"] == 50
        assert len(mon.snapshot()["events"]) == 5
        # the retained events are the most recent ones
        assert mon.events[-1].time_ms == 99.0

    def test_cooldown_at_window_boundary(self):
        """cooldown == window: each event rides a fully fresh window."""
        mon = DriftMonitor(threshold=0.1, window=8, min_observations=8,
                           cooldown=8)
        events = [i for i in range(64)
                  if mon.observe(1.0, 2.0, time_ms=float(i)) is not None]
        # first event exactly when the window fills, then every window
        assert events == [7, 15, 23, 31, 39, 47, 55, 63]
        assert all(e.window == 8 for e in mon.events)

    def test_nan_readout_before_min_observations(self):
        """Empty-window read-outs are NaN, not zero (zero would read as
        'perfectly calibrated' to a dashboard)."""
        mon = DriftMonitor(threshold=0.1, window=8, min_observations=4)
        assert math.isnan(mon.rolling_error)
        assert math.isnan(mon.bias)
        assert not mon.drifting                 # NaN never alarms
        snap = mon.snapshot()
        assert math.isnan(snap["rolling_error"]) and math.isnan(snap["bias"])
        # one observation in: read-outs become finite, still below min_obs
        mon.observe(1.0, 2.0)
        assert mon.rolling_error == 1.0
        assert not mon.drifting                 # gated by min_observations

    def test_virtual_clock_rewind(self):
        """The monitor is observation-counted, not clock-driven: a rewound
        time_ms (fresh engine, new trace at t=0) must not wedge it."""
        mon = DriftMonitor(threshold=0.1, window=4, min_observations=2,
                           cooldown=4)
        for i in range(8):
            mon.observe(1.0, 2.0, time_ms=float(100 + i))
        before = mon.events_total
        assert before > 0
        # clock rewinds to zero: events keep firing on observation counts
        # and record the caller's (rewound) times verbatim
        for i in range(8):
            mon.observe(1.0, 2.0, time_ms=float(i))
        assert mon.events_total > before
        assert mon.events[-1].time_ms < 100.0

    def test_reset_window_clears_evidence_not_history(self):
        mon = DriftMonitor(threshold=0.1, window=4, min_observations=2)
        for i in range(4):
            mon.observe(1.0, 2.0, time_ms=float(i))
        assert mon.events_total == 1 and mon.drifting
        mon.reset_window()
        assert math.isnan(mon.rolling_error) and not mon.drifting
        assert mon.events_total == 1            # the event log survives
        assert mon.observations == 4            # lifetime count survives
        # the next event needs min_observations of fresh evidence
        assert mon.observe(1.0, 2.0) is None
        assert mon.observe(1.0, 2.0) is not None

    def test_snapshot_and_report(self):
        mon = DriftMonitor(threshold=0.1, window=4, min_observations=2)
        for i in range(4):
            mon.observe(1.0, 2.0, time_ms=float(i), rung="cut3")
        snap = mon.snapshot()
        assert snap["drifting"] and snap["events"]
        assert "DRIFTING" in mon.report() and "cut3" in mon.report()


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        reg.counter("a").increment(2)
        reg.counter("a").increment()
        reg.gauge("g").set(4.5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 3}
        assert snap["gauges"] == {"g": 4.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_mount_requires_snapshot(self):
        reg = MetricsRegistry()
        with pytest.raises(TypeError, match="snapshot"):
            reg.mount("bad", object())

    def test_unified_snapshot_and_report(self, ladder):
        rate = 1.3e3 / ladder.rungs[0].estimate_ms(1)
        deadline = 1.2 * ladder.rungs[0].estimate_ms(1)
        tracer, drift = Tracer(), DriftMonitor()
        server = Server(ladder, ServerConfig(deadline_ms=deadline,
                                             execute=False, seed=0),
                        tracer=tracer, drift=drift)
        result = server.run_trace(poisson_trace(60, rate, deadline, rng=0))
        reg = MetricsRegistry()
        reg.mount("serve", result.metrics)
        reg.mount("trace", tracer)
        reg.mount("drift", drift)
        snap = reg.snapshot()
        assert snap["serve"]["counters"]["arrived"] == 60
        assert snap["trace"]["by_name"]["respond"] \
            == snap["serve"]["counters"]["completed"]
        assert "rolling_error" in snap["drift"]
        report = reg.report()
        for section in ("-- serve --", "-- trace --", "-- drift --"):
            assert section in report

    def test_registry_snapshot_is_detached(self):
        reg = MetricsRegistry()
        reg.mount("m", ServerMetrics(deadline_ms=1.0))
        snap = reg.snapshot()
        snap["m"]["counters"]["arrived"] = 999
        assert reg.snapshot()["m"]["counters"]["arrived"] == 0


# ---------------------------------------------------------------------------
# satellite regressions in repro.serve.metrics
# ---------------------------------------------------------------------------
class TestHistogramClamps:
    def test_all_samples_below_lo_clamp_to_observed_range(self):
        h = LatencyHistogram(lo_ms=1.0, hi_ms=100.0)
        for ms in (1e-4, 2e-4, 5e-4):
            h.observe(ms)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) <= h.lo_ms
            assert h.quantile(q) == pytest.approx(h.max_ms)

    def test_overflow_clamps_to_observed_max(self):
        h = LatencyHistogram(lo_ms=1e-3, hi_ms=1.0)
        h.observe(0.5)
        h.observe(123.0)
        assert h.quantile(1.0) == 123.0
        assert h.quantile(0.99) <= 123.0

    def test_interior_quantiles_unchanged(self):
        h = LatencyHistogram()
        rng = np.random.default_rng(0)
        samples = rng.lognormal(0.0, 0.5, size=2000)
        for ms in samples:
            h.observe(float(ms))
        assert h.quantile(0.5) == pytest.approx(
            float(np.quantile(samples, 0.5)), rel=0.15)


class TestSnapshotIsolation:
    def test_mutating_snapshot_leaves_live_metrics_intact(self):
        m = ServerMetrics(deadline_ms=1.0)
        m.record_arrival()
        m.record_transition(1.0, "degrade", "a", "b")
        snap = m.snapshot()
        snap["counters"]["arrived"] = 999
        snap["per_rung"]["ghost"] = 1
        snap["transitions"].clear()
        snap["latency"]["p50_ms"] = -1.0
        fresh = m.snapshot()
        assert fresh["counters"]["arrived"] == 1
        assert fresh["per_rung"] == {}
        assert len(fresh["transitions"]) == 1
        assert m.counters["arrived"].value == 1


# ---------------------------------------------------------------------------
# labeled telemetry: families, the time-series store, sampling
# ---------------------------------------------------------------------------

class TestMetricFamilies:
    def test_labeled_children_are_created_on_first_use(self):
        from repro.obs import Telemetry

        tele = Telemetry()
        fam = tele.counter("requests", "demo", ("tenant",))
        fam.labels(tenant="a").increment()
        fam.labels(tenant="a").increment(2)
        fam.labels(tenant="b").increment()
        values = {dict(k)["tenant"]: c.value for k, c in fam.children()}
        assert values == {"a": 3, "b": 1}
        # positional access resolves to the same child
        assert fam.child(("a",)).value == 3

    def test_label_schema_is_enforced(self):
        from repro.obs import Telemetry

        tele = Telemetry()
        fam = tele.gauge("depth", "demo", ("rung",))
        with pytest.raises(ValueError, match="expects labels"):
            fam.labels(tenant="a")
        with pytest.raises(ValueError, match="label"):
            fam.child(())

    def test_family_registration_is_idempotent_but_schema_checked(self):
        from repro.obs import Telemetry

        tele = Telemetry()
        fam = tele.counter("events", "demo", ("kind",))
        assert tele.counter("events", "demo", ("kind",)) is fam
        with pytest.raises(ValueError, match="already registered"):
            tele.gauge("events", "demo", ("kind",))
        with pytest.raises(ValueError, match="already registered"):
            tele.counter("events", "demo", ("other",))


class TestTimeSeriesStore:
    def test_ring_buffer_bounds_each_series(self):
        from repro.obs import TimeSeriesStore

        store = TimeSeriesStore(capacity=4)
        for t in range(10):
            store.record("m", None, float(t), float(t))
        pts = store.series("m")
        assert len(pts) == 4
        assert pts[0] == (6.0, 6.0)
        assert store.latest("m") == 9.0

    def test_delta_baselines_young_series_at_zero(self):
        from repro.obs import TimeSeriesStore

        store = TimeSeriesStore()
        store.record("c", None, 5.0, 7.0)
        # only 5 ms of history inside a 100 ms window: counters start at 0
        assert store.delta("c", None, 100.0, 10.0) == 7.0
        store.record("c", None, 50.0, 12.0)
        assert store.delta("c", None, 20.0, 60.0) == 5.0
        # no point inside the window: no evidence, not zero
        assert store.delta("c", None, 2.0, 200.0) is None

    def test_window_mean_skips_nan_points(self):
        from repro.obs import TimeSeriesStore

        store = TimeSeriesStore()
        store.record("g", None, 1.0, float("nan"))
        store.record("g", None, 2.0, 4.0)
        store.record("g", None, 3.0, 8.0)
        assert store.window_mean("g", None, 10.0, 3.0) == 6.0
        assert store.window_mean("g", None, 0.5, 1.0) is None

    def test_merged_sums_across_a_label_with_carry_forward(self):
        from repro.obs import TimeSeriesStore

        store = TimeSeriesStore()
        # r0 samples at t=1,3; r1 samples at t=2 only: at t=3 r1's last
        # known value must still contribute
        store.record("c", {"replica": "r0", "event": "done"}, 1.0, 1.0)
        store.record("c", {"replica": "r1", "event": "done"}, 2.0, 10.0)
        store.record("c", {"replica": "r0", "event": "done"}, 3.0, 2.0)
        merged = store.merged("c", drop_label="replica")
        pts = merged[(("event", "done"),)]
        assert pts == [(1.0, 1.0), (2.0, 11.0), (3.0, 12.0)]


class TestTelemetrySampling:
    def test_maybe_sample_gates_on_the_interval(self):
        from repro.obs import Telemetry

        tele = Telemetry(sample_interval_ms=5.0)
        tele.gauge("g").child(()).set(1.0)
        assert tele.maybe_sample(0.0)
        assert not tele.maybe_sample(4.9)
        assert tele.maybe_sample(5.0)
        assert tele.samples_taken == 2
        # a clock rewind (a fresh run on the same surface) resets the gate
        assert tele.maybe_sample(0.0)

    def test_collectors_run_before_each_sample_and_are_keyed(self):
        from repro.obs import Telemetry

        tele = Telemetry()
        g = tele.gauge("depth").child(())
        calls = []
        tele.collector("engine", lambda now: (calls.append(now),
                                              g.set(now * 2)))
        tele.sample(3.0)
        assert calls == [3.0]
        assert tele.store.latest("depth") == 6.0
        # re-registering under the same key replaces the stale closure
        tele.collector("engine", lambda now: g.set(-1.0))
        tele.sample(4.0)
        assert calls == [3.0]
        assert tele.store.latest("depth") == -1.0

    def test_histograms_sample_as_count_mean_p99(self):
        from repro.obs import Telemetry

        tele = Telemetry()
        h = tele.histogram("lat_ms", "demo").child(())
        for ms in (1.0, 2.0, 3.0):
            h.observe(ms)
        tele.sample(1.0)
        assert tele.store.latest("lat_ms_count") == 3
        assert tele.store.latest("lat_ms_mean") == pytest.approx(2.0)
        assert tele.store.latest("lat_ms_p99") >= 2.0


# ---------------------------------------------------------------------------
# exposition: OpenMetrics text + JSON
# ---------------------------------------------------------------------------

class TestExposition:
    def make_surface(self):
        from repro.obs import Telemetry

        tele = Telemetry()
        c = tele.counter("requests_total", "served requests", ("tenant",))
        c.labels(tenant="a").increment(3)
        c.labels(tenant="b").increment(1)
        tele.gauge("queue_depth", "queue fill").child(()).set(4.0)
        h = tele.histogram("latency_ms", "per-request latency")
        for ms in (0.5, 1.0, 2.0):
            h.child(()).observe(ms)
        tele.sample(1.0)
        return tele

    def test_openmetrics_text_shape(self):
        from repro.obs import to_openmetrics

        text = to_openmetrics(self.make_surface())
        assert text.endswith("# EOF\n")
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{tenant="a"} 3' in text
        assert "# TYPE latency_ms summary" in text
        assert 'latency_ms{quantile="0.99"}' in text
        assert "latency_ms_count 3" in text
        assert "queue_depth 4" in text

    def test_exposition_is_deterministic(self):
        from repro.obs import to_json, to_openmetrics

        a, b = self.make_surface(), self.make_surface()
        assert to_openmetrics(a) == to_openmetrics(b)
        assert json.dumps(to_json(a), sort_keys=True) \
            == json.dumps(to_json(b), sort_keys=True)

    def test_json_export_carries_metrics_and_series(self):
        from repro.obs import to_json

        payload = to_json(self.make_surface())
        assert set(payload) == {"metrics", "series"}
        fams = payload["metrics"]["families"]
        assert fams["requests_total"]["children"][0]["labels"] \
            == {"tenant": "a"}
        assert payload["series"]["queue_depth"][0]["points"] == [[1.0, 4.0]]

    def test_label_values_are_escaped(self):
        from repro.obs import Telemetry, to_openmetrics

        tele = Telemetry()
        tele.counter("c", "", ("k",)).labels(k='sa"w\\n').increment()
        text = to_openmetrics(tele)
        assert 'c{k="sa\\"w\\\\n"} 1' in text


class TestJsonlNonFinite:
    def test_nan_and_inf_span_args_become_null(self):
        tracer = Tracer()
        tracer.instant("x", "cat", 1.0, bad=float("nan"),
                       worse=float("inf"), fine=2.0)
        line = to_jsonl(tracer)
        parsed = json.loads(line)          # strict: would reject bare NaN
        assert parsed["args"] == {"bad": None, "worse": None, "fine": 2.0}
        assert "NaN" not in line and "Infinity" not in line


# ---------------------------------------------------------------------------
# SLO burn-rate alerting
# ---------------------------------------------------------------------------

class TestBurnRateAlerts:
    def storm_run(self, ladder):
        from repro.faults import build_scenario
        from repro.obs import AlertEngine, Telemetry, default_slo_rules

        full = ladder.rungs[0].estimate_ms(1)
        deadline = round(5.0 * full, 3)
        trace = poisson_trace(1200, 0.5e3 / full, deadline, rng=2)
        scenario = build_scenario("straggler-storm",
                                  trace[-1].arrival_ms * 0.5, seed=0)
        engine = AlertEngine(default_slo_rules(deadline, miss_budget=0.05,
                                               fast_ms=8.0, slow_ms=24.0))
        telemetry = Telemetry(sample_interval_ms=1.0)
        telemetry.attach_alerts(engine)
        config = ServerConfig(deadline_ms=deadline, execute=False, seed=2,
                              adaptive=False)
        server = Server(ladder, config, faults=scenario.injector(),
                        telemetry=telemetry)
        return server.run_trace(trace), engine

    def test_storm_fires_and_resolves_both_rules(self, ladder):
        result, engine = self.storm_run(ladder)
        assert result.metrics.miss_rate > 0.05
        by_rule = {}
        for e in engine.events:
            by_rule.setdefault(e.rule, []).append(e.state)
        assert by_rule == {"slo-miss-rate": ["firing", "resolved"],
                           "slo-p99": ["firing", "resolved"]}
        assert engine.active == []
        # firing strictly precedes resolution in virtual time
        for rule in by_rule:
            times = [e.time_ms for e in engine.events if e.rule == rule]
            assert times[0] < times[1]

    def test_alert_timeline_is_deterministic(self, ladder):
        _, a = self.storm_run(ladder)
        _, b = self.storm_run(ladder)
        assert [e.as_dict() for e in a.events] \
            == [e.as_dict() for e in b.events]

    def test_rules_validate_their_shape(self):
        from repro.obs import AlertEngine, BurnRateRule

        with pytest.raises(ValueError, match="fast_ms"):
            BurnRateRule("r", "gauge", 1.0, fast_ms=60.0, slow_ms=20.0,
                         series="s")
        with pytest.raises(ValueError, match="ratio"):
            BurnRateRule("r", "ratio", 0.1, fast_ms=5.0, slow_ms=20.0)
        rule = BurnRateRule("r", "gauge", 1.0, fast_ms=5.0, slow_ms=20.0,
                            series="s")
        with pytest.raises(ValueError, match="unique"):
            AlertEngine([rule, rule])

    def test_ratio_rule_needs_both_window_signals_to_fire(self):
        from repro.obs import AlertEngine, BurnRateRule, Telemetry

        rule = BurnRateRule("miss", "ratio", 0.1, fast_ms=5.0, slow_ms=20.0,
                            numerator="miss_total", denominator="done_total")
        tele = Telemetry(sample_interval_ms=1.0)
        engine = AlertEngine([rule])
        tele.attach_alerts(engine)
        miss = tele.counter("miss_total").child(())
        done = tele.counter("done_total").child(())
        # burn above threshold, but only 3 ms of history: the slow window
        # still sees the same ratio (zero baseline), so this fires only
        # once both windows agree — evaluate directly to check gating
        done.increment(10)
        miss.increment(5)
        tele.sample(1.0)
        assert engine.active == ["miss"]


# ---------------------------------------------------------------------------
# the run store
# ---------------------------------------------------------------------------

class TestRunStore:
    def surface(self):
        from repro.obs import Telemetry

        tele = Telemetry()
        tele.counter("done_total", "x", ("tenant",)) \
            .labels(tenant="a").increment(5)
        tele.gauge("depth").child(()).set(2.0)
        h = tele.histogram("lat_ms").child(())
        for ms in (1.0, 3.0):
            h.observe(ms)
        tele.sample(1.0)
        tele.sample(2.0)
        return tele

    def test_round_trip(self, tmp_path):
        from repro.obs import RunStore

        path = str(tmp_path / "rs.sqlite")
        with RunStore(path) as store:
            rid = store.add_run("test.run", meta={"seed": 3},
                                telemetry=self.surface(),
                                artifacts={"payload": {"x": {"y": 2.5}}},
                                summary={"extra": 9.0})
        with RunStore(path) as store:
            rows = store.runs()
            assert [r["id"] for r in rows] == [rid]
            assert rows[0]["kind"] == "test.run"
            assert rows[0]["meta"] == {"seed": 3}
            summary = store.summary(rid)
            assert summary['done_total{"tenant": "a"}'] == 5.0
            assert summary["depth"] == 2.0
            assert summary["lat_ms_count"] == 2.0
            assert summary["extra"] == 9.0
            assert store.series(rid, "depth") == [(1.0, 2.0), (2.0, 2.0)]
            assert "done_total" in store.series_names(rid)
            assert store.artifacts(rid) == {"payload": {"x": {"y": 2.5}}}

    def test_compare_ranks_biggest_relative_movers_first(self, tmp_path):
        from repro.obs import RunStore

        with RunStore(str(tmp_path / "rs.sqlite")) as store:
            a = store.add_run("t", summary={"same": 1.0, "big": 1.0,
                                            "small": 100.0},
                              artifacts={"p": {"leaf": 2.0}})
            b = store.add_run("t", summary={"same": 1.0, "big": 3.0,
                                            "small": 101.0},
                              artifacts={"p": {"leaf": 4.0}})
            rows = store.compare(a, b)
        keys = [r["key"] for r in rows]
        assert keys[0] == "big"                      # +200%
        assert keys[1] == "p:leaf"                   # +100%
        assert keys.index("big") < keys.index("small")
        by_key = {r["key"]: r for r in rows}
        assert by_key["big"]["delta"] == 2.0
        assert by_key["same"]["rel"] == 0.0

    def test_compare_unknown_run_raises(self, tmp_path):
        from repro.obs import RunStore

        with RunStore(str(tmp_path / "rs.sqlite")) as store:
            rid = store.add_run("t", summary={"x": 1.0})
            with pytest.raises(KeyError):
                store.compare(rid, rid + 1)


# ---------------------------------------------------------------------------
# serve + cluster integration
# ---------------------------------------------------------------------------

class TestServeTelemetry:
    def run_pair(self, ladder):
        from repro.obs import Telemetry

        full = ladder.rungs[0].estimate_ms(1)
        trace = poisson_trace(300, 1.3e3 / full, 1.0, rng=0)
        config = ServerConfig(deadline_ms=1.0, execute=False, seed=0)
        plain = Server(ladder, config).run_trace(trace)
        telemetry = Telemetry(sample_interval_ms=1.0)
        metered = Server(ladder, config,
                         telemetry=telemetry).run_trace(trace)
        return plain, metered, telemetry

    def test_families_mirror_server_metrics_exactly(self, ladder):
        plain, metered, telemetry = self.run_pair(ladder)
        fam = telemetry.families["serve_requests_total"]
        mirrored = {dict(k)["event"]: c.value for k, c in fam.children()}
        for event in ("arrived", "admitted", "rejected", "completed",
                      "deadline_miss", "dropped"):
            assert mirrored[event] == metered.metrics.counters[event].value

    def test_telemetry_does_not_change_the_serving_outcome(self, ladder):
        plain, metered, _ = self.run_pair(ladder)
        assert metered.metrics.snapshot() == plain.metrics.snapshot()

    def test_sampled_series_cover_the_run(self, ladder):
        _, _, telemetry = self.run_pair(ladder)
        depth = telemetry.store.series("serve_queue_depth", ())
        assert len(depth) > 10
        times = [t for t, _ in depth]
        assert times == sorted(times)
        # the closing sample lands at or after the last arrival
        assert telemetry.store.latest("serve_requests_total",
                                      (("event", "arrived"),)) == 300

    def test_breaker_rung_label(self, device):
        # a breaker transition carries the rung that tripped it
        m = ServerMetrics(deadline_ms=1.0)
        from repro.obs import Telemetry

        tele = Telemetry()
        m2 = ServerMetrics(deadline_ms=1.0, telemetry=tele)
        m2.record_breaker("open", rung="cut3")
        fam = tele.families["serve_breaker_transitions_total"]
        labels = [dict(k) for k, _ in fam.children()]
        assert {"rung": "cut3", "state": "open"} in labels
        # and the unlabeled counter still counts (back-compat surface)
        assert m2.counters["breaker_opens"].value == 1
        m.record_breaker("open")
        assert m.counters["breaker_opens"].value == 1


class TestClusterTelemetry:
    def test_merged_series_sums_replica_counters(self, device):
        from repro.cluster import Router, homogeneous_replicas, make_policy
        from repro.obs import Telemetry

        tele = Telemetry(sample_interval_ms=1.0)
        base = make_tiny_net()
        config = ServerConfig(deadline_ms=1.0, execute=False, seed=0)
        replicas = homogeneous_replicas(base, device, 3, config,
                                        num_classes=5, telemetry=tele)
        trace = poisson_trace(300, 3e4, 1.0, rng=0)
        router = Router(replicas, make_policy("p2c-deadline", 0),
                        telemetry=tele)
        result = router.run(trace)

        merged = tele.store.merged("serve_requests_total",
                                   drop_label="replica")
        completed = merged[(("event", "completed"),)]
        per_replica = sum(
            r.metrics.counters["completed"].value for r in replicas)
        assert completed[-1][1] == per_replica
        assert result.metrics.counters["routed"].value == 300
        # cluster-level gauges were collected on the shared clock
        assert tele.store.latest("cluster_replicas", ()) == 3.0
        assert tele.store.latest("cluster_requests_total",
                                 (("event", "routed"),)) == 300

    def test_merged_series_requires_telemetry(self, device):
        from repro.cluster import ClusterMetrics, Replica

        base = make_tiny_net()
        config = ServerConfig(deadline_ms=1.0, execute=False, seed=0)
        ladder = TRNLadder.from_base(base, device, num_classes=5)
        metrics = ClusterMetrics([Replica("r0", ladder, config)])
        with pytest.raises(ValueError, match="telemetry"):
            metrics.merged_series("serve_requests_total")


class TestKernelTelemetry:
    def test_engine_kernel_timing_fills_the_kernel_family(self, ladder):
        from repro.obs import Telemetry

        full = ladder.rungs[0].estimate_ms(1)
        trace = poisson_trace(40, 0.5e3 / full, 5.0, rng=0,
                              image_size=8, render=True)
        telemetry = Telemetry(sample_interval_ms=1.0)
        config = ServerConfig(deadline_ms=5.0, execute=True, seed=0,
                              kernel_timing=True)
        result = Server(ladder, config, telemetry=telemetry).run_trace(trace)
        assert result.metrics.counters["completed"].value > 0

        fam = telemetry.families["kernel_latency_ms"]
        children = list(fam.children())
        assert children
        rungs = {dict(k)["rung"] for k, _ in children}
        assert rungs <= {r.name for r in ladder.rungs}
        for key, hist in children:
            snap = hist.snapshot()
            assert snap["count"] > 0
            assert snap["mean_ms"] > 0

    def test_kernel_timing_off_keeps_the_family_empty(self, ladder):
        from repro.obs import Telemetry

        full = ladder.rungs[0].estimate_ms(1)
        trace = poisson_trace(20, 0.5e3 / full, 5.0, rng=0,
                              image_size=8, render=True)
        telemetry = Telemetry(sample_interval_ms=1.0)
        config = ServerConfig(deadline_ms=5.0, execute=True, seed=0)
        Server(ladder, config, telemetry=telemetry).run_trace(trace)
        assert list(telemetry.families["kernel_latency_ms"].children()) == []


class TestExpositionBytesStableAcrossHashSeeds:
    def test_openmetrics_and_jsonl_bytes_survive_hash_randomization(
            self, tmp_path):
        # same idiom as the workload recording test: two interpreters with
        # different PYTHONHASHSEED must emit byte-identical telemetry
        # exposition and span JSONL — sorted output, no dict-order leaks
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        code = (
            "import sys\n"
            "sys.path.insert(0, %r); sys.path.insert(0, %r)\n"
            "from conftest import make_tiny_net\n"
            "from repro.device.spec import DeviceSpec\n"
            "from repro.obs import Telemetry, Tracer, to_jsonl, "
            "to_openmetrics\n"
            "from repro.serve import Server, ServerConfig, TRNLadder\n"
            "from repro.workload import poisson_trace\n"
            "spec = DeviceSpec(name='d', peak_gflops=10.0,\n"
            "    bandwidth_gbps=1.0, launch_overhead_us=5.0,\n"
            "    occupancy_flops=1e4, noise_std=0.005, straggler_prob=0.0,\n"
            "    event_overhead_us=2.0)\n"
            "ladder = TRNLadder.from_base(make_tiny_net(), spec,\n"
            "                             num_classes=5)\n"
            "trace = poisson_trace(200, 1.3e3 / ladder.rungs[0]"
            ".estimate_ms(1), 1.0, rng=0)\n"
            "tele, tracer = Telemetry(), Tracer()\n"
            "config = ServerConfig(deadline_ms=1.0, execute=False, seed=0)\n"
            "Server(ladder, config, tracer=tracer,\n"
            "       telemetry=tele).run_trace(trace)\n"
            "with open(sys.argv[1], 'w') as fh:\n"
            "    fh.write(to_openmetrics(tele))\n"
            "    fh.write(to_jsonl(tracer))\n"
        ) % (os.path.join(repo, "src"), os.path.join(repo, "tests"))

        def run(hashseed: str, name: str) -> bytes:
            path = tmp_path / name
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            subprocess.run([sys.executable, "-c", code, str(path)],
                           env=env, check=True, capture_output=True)
            return path.read_bytes()

        first = run("0", "a.txt")
        second = run("31337", "b.txt")
        assert first == second
        assert b"# EOF" in first
