"""Tests for the observability stack (repro.obs).

Covers the forward hooks on Network, the hook-driven LayerProfiler and its
agreement with the device's own profiling chain, request tracing through a
served trace (JSONL determinism, Chrome-trace schema, span accounting),
the estimator-drift monitor, the unified metrics registry, and the
histogram/snapshot regressions in repro.serve.metrics.
"""

import json

import numpy as np
import pytest

from conftest import make_tiny_net
from repro.device import profile_network, xavier
from repro.estimators import ProfilerEstimator
from repro.obs import (
    DriftMonitor,
    LayerProfiler,
    MetricsRegistry,
    Span,
    TraceBuffer,
    Tracer,
    chrome_trace,
    profile_forward,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.serve import (
    LatencyHistogram,
    Server,
    ServerConfig,
    ServerMetrics,
    TRNLadder,
    poisson_trace,
)
from repro.trim import enumerate_blockwise, removed_node_set
from repro.zoo import build_network


@pytest.fixture(scope="module")
def device():
    from repro.device.spec import DeviceSpec

    return DeviceSpec(
        name="test-device", peak_gflops=10.0, bandwidth_gbps=1.0,
        launch_overhead_us=5.0, occupancy_flops=1e4, noise_std=0.005,
        straggler_prob=0.0, event_overhead_us=2.0)


@pytest.fixture(scope="module")
def ladder(device):
    return TRNLadder.from_base(make_tiny_net(), device, num_classes=5)


# ---------------------------------------------------------------------------
# forward hooks on Network
# ---------------------------------------------------------------------------
class TestForwardHooks:
    def test_pre_and_post_fire_per_node_in_execution_order(self, tiny_net):
        events = []
        tiny_net.register_forward_pre_hook(
            lambda net, node, ins: events.append(("pre", node.name)))
        tiny_net.register_forward_hook(
            lambda net, node, ins, out: events.append(("post", node.name)))
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        tiny_net.forward(x)
        names = [n for _, n in events[::2]]
        assert names == [n for _, n in events[1::2]]  # pre/post pair up
        assert all(kind == "pre" for kind, _ in events[::2])
        assert all(kind == "post" for kind, _ in events[1::2])
        assert names == list(tiny_net.nodes)          # topological order
        assert names[-1] == tiny_net.output_name

    def test_post_hook_sees_the_node_output(self, tiny_net):
        seen = {}
        tiny_net.register_forward_hook(
            lambda net, node, ins, out: seen.setdefault(node.name, out))
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        y = tiny_net.forward(x)
        # the hook sees the raw node output (with the internal batch axis)
        np.testing.assert_array_equal(
            np.squeeze(seen[tiny_net.output_name]), np.squeeze(y))

    def test_remove_hook_detaches(self, tiny_net):
        calls = []
        handle = tiny_net.register_forward_hook(
            lambda net, node, ins, out: calls.append(node.name))
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        tiny_net.forward(x)
        n = len(calls)
        assert n > 0
        tiny_net.remove_hook(handle)
        assert not tiny_net.has_hooks
        tiny_net.forward(x)
        assert len(calls) == n

    def test_copy_and_subgraph_start_with_fresh_hooks(self, tiny_net):
        tiny_net.register_forward_hook(lambda *a: None)
        clone = tiny_net.copy()
        sub = tiny_net.subgraph("b2_add")
        assert tiny_net.has_hooks
        assert not clone.has_hooks
        assert not sub.has_hooks


# ---------------------------------------------------------------------------
# LayerProfiler
# ---------------------------------------------------------------------------
class TestLayerProfiler:
    def test_requires_built_network(self, device):
        from repro.nn import Conv2D, Network

        net = Network("unbuilt", (8, 8, 3))
        net.add("c", Conv2D(4, 3))
        with pytest.raises(RuntimeError, match="built"):
            LayerProfiler(net, device)

    def test_table_requires_recorded_runs(self, tiny_net, device):
        prof = LayerProfiler(tiny_net, device, warmup=5)
        with pytest.raises(RuntimeError, match="warm-up"):
            prof.table()

    def test_recorded_total_close_to_end_to_end(self, tiny_net, device):
        """Table sum ≈ e2e forward time, inflated only by event overhead."""
        table = profile_forward(tiny_net, device, runs=40, warmup=200,
                                rng=0)
        overhead = device.event_overhead_ms() * len(table.records)
        assert table.recorded_total_ms > table.end_to_end_ms
        gap = table.recorded_total_ms - table.end_to_end_ms
        assert gap == pytest.approx(overhead, rel=0.05)

    def test_warmup_runs_are_discarded(self, tiny_net, device):
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        with LayerProfiler(tiny_net, device, rng=0, warmup=3) as prof:
            for _ in range(5):
                tiny_net.forward(x)
        assert prof.runs == 5
        assert prof.recorded_runs == 2

    def test_warm_up_jump_matches_real_warmup_runs(self, tiny_net, device):
        """Skipping the ramp via warm_up() ≡ paying for the forwards."""
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        with LayerProfiler(tiny_net, device, rng=0, warmup=200) as prof:
            prof.warm_up()
            for _ in range(20):
                tiny_net.forward(x)
        jumped = profile_forward(tiny_net, device, runs=20, warmup=200,
                                 rng=0)
        assert prof.table().end_to_end_ms == \
            pytest.approx(jumped.end_to_end_ms, rel=0.02)

    def test_detach_stops_accumulation(self, tiny_net, device):
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        prof = LayerProfiler(tiny_net, device, rng=0, warmup=0).attach()
        tiny_net.forward(x)
        prof.detach()
        tiny_net.forward(x)
        assert prof.recorded_runs == 1
        assert not tiny_net.has_hooks

    def test_fixed_seed_is_deterministic(self, tiny_net, device):
        t1 = profile_forward(tiny_net, device, runs=10, warmup=50, rng=7)
        t2 = profile_forward(tiny_net, device, runs=10, warmup=50, rng=7)
        assert t1 == t2

    def test_snapshot_reports_progress(self, tiny_net, device):
        table = None
        prof = LayerProfiler(tiny_net, device, rng=0, warmup=0)
        snap = prof.snapshot()
        assert snap["recorded_runs"] == 0 and "end_to_end_ms" not in snap
        x = np.zeros(tiny_net.input_shape, dtype=np.float32)
        with prof:
            tiny_net.forward(x)
        snap = prof.snapshot()
        assert snap["recorded_runs"] == 1
        assert snap["recorded_total_ms"] > snap["end_to_end_ms"] > 0

    @pytest.mark.parametrize("name", ["mobilenet_v1_0.25", "resnet50",
                                      "densenet121"])
    def test_obs_table_matches_device_estimator_on_zoo(self, name):
        """Acceptance: ratio-form estimate from the hooked table lands
        within 5% of the estimate from repro.device's own profiler."""
        spec = xavier()
        net = build_network(name).build(0)
        obs_table = profile_forward(net, spec, runs=40, rng=0)
        dev_table = profile_network(net, spec)
        cuts = enumerate_blockwise(net)
        for cut in (cuts[1], cuts[len(cuts) // 2], cuts[-1]):
            removed = removed_node_set(net, cut.cut_node)
            est_obs = ProfilerEstimator(net, obs_table).estimate(removed)
            est_dev = ProfilerEstimator(net, dev_table).estimate(removed)
            assert est_obs == pytest.approx(est_dev, rel=0.05), cut.cut_node

    def test_describe_mentions_overhead_artefact(self, tiny_net, device):
        table = profile_forward(tiny_net, device, runs=10, warmup=50, rng=0)
        text = table.describe(top=3)
        assert tiny_net.name in text
        assert "recorded total" in text and "end-to-end" in text
        # header + column row + 3 kernels + footer
        assert len(text.splitlines()) == 6


# ---------------------------------------------------------------------------
# tracing primitives
# ---------------------------------------------------------------------------
class TestTracer:
    def test_buffer_bounded_with_dropped_count(self):
        buf = TraceBuffer(capacity=3)
        for i in range(5):
            buf.append(Span("e", "t", float(i)))
        assert len(buf) == 3
        assert buf.dropped == 2
        assert [s.ts_ms for s in buf] == [2.0, 3.0, 4.0]

    def test_buffer_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)

    def test_counts_survive_eviction(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.instant("enqueue", "queue", float(i))
        assert tracer.count("enqueue") == 5
        assert len(tracer.spans("enqueue")) == 2
        snap = tracer.snapshot()
        assert snap == {"buffered": 2, "dropped": 3,
                        "by_name": {"enqueue": 5}}

    def test_clear_resets_everything(self):
        tracer = Tracer()
        tracer.span("forward", "serve", 1.0, 0.5, rid=0)
        tracer.clear()
        assert tracer.spans() == [] and tracer.count("forward") == 0

    def test_jsonl_round_trips(self):
        tracer = Tracer()
        tracer.instant("admit", "serve", 1.5, rid=3)
        tracer.span("forward", "serve", 1.5, 0.25, size=2)
        lines = to_jsonl(tracer).splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"name": "admit", "cat": "serve", "ts_ms": 1.5,
                         "dur_ms": 0.0, "rid": 3}
        assert json.loads(lines[1])["args"] == {"size": 2}


class TestChromeTrace:
    def test_schema_validates(self):
        tracer = Tracer()
        tracer.instant("enqueue", "queue", 0.5, rid=0)
        tracer.span("forward", "serve", 1.0, 0.3, rung="r0")
        doc = chrome_trace(tracer)
        json.dumps(doc)                       # serializable
        events = doc["traceEvents"]
        assert all({"name", "ph", "pid", "tid"} <= set(e) for e in events)
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "i", "M"}
        complete = [e for e in events if e["ph"] == "X"]
        assert complete[0]["dur"] == pytest.approx(300.0)   # 0.3 ms in µs
        instants = [e for e in events if e["ph"] == "i"]
        assert instants[0]["ts"] == pytest.approx(500.0)

    def test_categories_become_thread_tracks(self):
        tracer = Tracer()
        tracer.instant("enqueue", "queue", 0.0)
        tracer.instant("respond", "serve", 1.0)
        doc = chrome_trace(tracer)
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["name"] == "thread_name"}
        assert names == {"queue", "serve"}


# ---------------------------------------------------------------------------
# tracing + drift through a served trace
# ---------------------------------------------------------------------------
class TestTracedServing:
    def _run(self, ladder, seed=0, requests=150, capacity=65536):
        rate = 1.3e3 / ladder.rungs[0].estimate_ms(1)
        deadline = 1.2 * ladder.rungs[0].estimate_ms(1)
        trace = poisson_trace(requests, rate, deadline, rng=seed)
        tracer = Tracer(capacity=capacity)
        drift = DriftMonitor()
        server = Server(ladder, ServerConfig(deadline_ms=deadline,
                                             execute=False, seed=seed),
                        tracer=tracer, drift=drift)
        result = server.run_trace(trace)
        return result, tracer, drift

    def test_span_accounting_matches_metrics(self, ladder):
        result, tracer, _ = self._run(ladder)
        c = result.metrics.counters
        assert tracer.count("enqueue") == c["admitted"].value
        assert tracer.count("admit") == c["admitted"].value
        assert tracer.count("respond") == c["admitted"].value \
            == c["completed"].value
        assert tracer.count("drop") == c["rejected"].value
        assert tracer.count("batch") == tracer.count("forward") \
            == c["batches"].value
        transitions = c["degrade_events"].value + c["upgrade_events"].value
        assert tracer.count("degrade") + tracer.count("upgrade") \
            == transitions

    def test_drops_are_traced_with_reason(self, ladder):
        # rate far above capacity: admission control must reject some
        full = ladder.rungs[0].estimate_ms(1)
        trace = poisson_trace(150, 40e3 / full, 0.9 * full, rng=0)
        tracer = Tracer()
        server = Server(ladder, ServerConfig(deadline_ms=0.9 * full,
                                             execute=False, seed=0),
                        tracer=tracer)
        result = server.run_trace(trace)
        rejected = result.metrics.counters["rejected"].value
        assert rejected > 0
        drops = tracer.spans("drop")
        assert len(drops) == rejected
        assert all(s.args["reason"] in ("unmeetable-deadline", "queue-full")
                   for s in drops)

    def test_same_seed_runs_export_identical_jsonl(self, ladder, tmp_path):
        _, t1, _ = self._run(ladder, seed=3)
        _, t2, _ = self._run(ladder, seed=3)
        assert to_jsonl(t1) == to_jsonl(t2)
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert write_jsonl(t1, p1) == write_jsonl(t2, p2) > 0
        assert p1.read_bytes() == p2.read_bytes()

    def test_chrome_export_of_served_trace(self, ladder, tmp_path):
        _, tracer, _ = self._run(ladder)
        path = tmp_path / "serve.trace.json"
        n = write_chrome_trace(tracer, path)
        assert n == len(tracer.spans())
        doc = json.loads(path.read_text())
        # one event per span + process metadata + one per category track
        cats = {s.cat for s in tracer.spans()}
        assert len(doc["traceEvents"]) == n + 1 + len(cats)

    def test_unbiased_estimator_stays_silent(self, ladder):
        _, _, drift = self._run(ladder)
        assert drift.observations > 0
        assert not drift.drifting
        assert drift.events == []


# ---------------------------------------------------------------------------
# drift monitor
# ---------------------------------------------------------------------------
class TestDriftMonitor:
    def test_fires_on_biased_estimator(self):
        mon = DriftMonitor(threshold=0.25, window=16, min_observations=8)
        rng = np.random.default_rng(0)
        event = None
        for i in range(20):
            obs = 1.5 * (1 + rng.normal(0, 0.01))   # 50% under-estimate
            event = event or mon.observe(1.0, obs, time_ms=float(i),
                                         rung="r0")
        assert event is not None
        assert event.rel_error > 0.25
        assert event.bias == pytest.approx(0.5, abs=0.05)
        assert event.rung == "r0"
        assert mon.drifting

    def test_silent_on_unbiased_noise(self):
        mon = DriftMonitor(threshold=0.25, window=16, min_observations=8)
        rng = np.random.default_rng(0)
        for i in range(200):
            assert mon.observe(1.0, 1.0 + rng.normal(0, 0.02)) is None
        assert not mon.drifting
        assert mon.rolling_error < 0.05

    def test_cooldown_spaces_events(self):
        mon = DriftMonitor(threshold=0.1, window=8, min_observations=4,
                           cooldown=8)
        for i in range(32):
            mon.observe(1.0, 2.0, time_ms=float(i))
        assert len(mon.events) == 4     # every `cooldown` observations

    def test_needs_min_observations(self):
        mon = DriftMonitor(threshold=0.1, window=32, min_observations=16)
        for _ in range(15):
            assert mon.observe(1.0, 3.0) is None
        assert mon.observe(1.0, 3.0) is not None

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DriftMonitor(threshold=0.0)
        with pytest.raises(ValueError):
            DriftMonitor(window=0)
        with pytest.raises(ValueError):
            DriftMonitor().observe(0.0, 1.0)

    def test_snapshot_and_report(self):
        mon = DriftMonitor(threshold=0.1, window=4, min_observations=2)
        for i in range(4):
            mon.observe(1.0, 2.0, time_ms=float(i), rung="cut3")
        snap = mon.snapshot()
        assert snap["drifting"] and snap["events"]
        assert "DRIFTING" in mon.report() and "cut3" in mon.report()


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------
class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        reg.counter("a").increment(2)
        reg.counter("a").increment()
        reg.gauge("g").set(4.5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 3}
        assert snap["gauges"] == {"g": 4.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_mount_requires_snapshot(self):
        reg = MetricsRegistry()
        with pytest.raises(TypeError, match="snapshot"):
            reg.mount("bad", object())

    def test_unified_snapshot_and_report(self, ladder):
        rate = 1.3e3 / ladder.rungs[0].estimate_ms(1)
        deadline = 1.2 * ladder.rungs[0].estimate_ms(1)
        tracer, drift = Tracer(), DriftMonitor()
        server = Server(ladder, ServerConfig(deadline_ms=deadline,
                                             execute=False, seed=0),
                        tracer=tracer, drift=drift)
        result = server.run_trace(poisson_trace(60, rate, deadline, rng=0))
        reg = MetricsRegistry()
        reg.mount("serve", result.metrics)
        reg.mount("trace", tracer)
        reg.mount("drift", drift)
        snap = reg.snapshot()
        assert snap["serve"]["counters"]["arrived"] == 60
        assert snap["trace"]["by_name"]["respond"] \
            == snap["serve"]["counters"]["completed"]
        assert "rolling_error" in snap["drift"]
        report = reg.report()
        for section in ("-- serve --", "-- trace --", "-- drift --"):
            assert section in report

    def test_registry_snapshot_is_detached(self):
        reg = MetricsRegistry()
        reg.mount("m", ServerMetrics(deadline_ms=1.0))
        snap = reg.snapshot()
        snap["m"]["counters"]["arrived"] = 999
        assert reg.snapshot()["m"]["counters"]["arrived"] == 0


# ---------------------------------------------------------------------------
# satellite regressions in repro.serve.metrics
# ---------------------------------------------------------------------------
class TestHistogramClamps:
    def test_all_samples_below_lo_clamp_to_observed_range(self):
        h = LatencyHistogram(lo_ms=1.0, hi_ms=100.0)
        for ms in (1e-4, 2e-4, 5e-4):
            h.observe(ms)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) <= h.lo_ms
            assert h.quantile(q) == pytest.approx(h.max_ms)

    def test_overflow_clamps_to_observed_max(self):
        h = LatencyHistogram(lo_ms=1e-3, hi_ms=1.0)
        h.observe(0.5)
        h.observe(123.0)
        assert h.quantile(1.0) == 123.0
        assert h.quantile(0.99) <= 123.0

    def test_interior_quantiles_unchanged(self):
        h = LatencyHistogram()
        rng = np.random.default_rng(0)
        samples = rng.lognormal(0.0, 0.5, size=2000)
        for ms in samples:
            h.observe(float(ms))
        assert h.quantile(0.5) == pytest.approx(
            float(np.quantile(samples, 0.5)), rel=0.15)


class TestSnapshotIsolation:
    def test_mutating_snapshot_leaves_live_metrics_intact(self):
        m = ServerMetrics(deadline_ms=1.0)
        m.record_arrival()
        m.record_transition(1.0, "degrade", "a", "b")
        snap = m.snapshot()
        snap["counters"]["arrived"] = 999
        snap["per_rung"]["ghost"] = 1
        snap["transitions"].clear()
        snap["latency"]["p50_ms"] = -1.0
        fresh = m.snapshot()
        assert fresh["counters"]["arrived"] == 1
        assert fresh["per_rung"] == {}
        assert len(fresh["transitions"]) == 1
        assert m.counters["arrived"].value == 1
