"""CLI integration tests: every subcommand end-to-end in --quick mode."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("clicache"))


def run(cache, *argv, capsys=None):
    code = main(["--quick", "--cache-dir", cache,
                 "--networks", "mobilenet_v1_0.25",
                 "--networks", "mobilenet_v1_0.5",
                 *argv])
    assert code == 0


class TestCLIIntegration:
    def test_measure(self, cache, capsys):
        run(cache, "measure", "--deadline", "0.35")
        out = capsys.readouterr().out
        assert "mobilenet_v1_0.5" in out
        assert "meets" in out or "misses" in out

    def test_measure_single_net(self, cache, capsys):
        run(cache, "measure", "--net", "mobilenet_v1_0.25")
        out = capsys.readouterr().out
        assert "mobilenet_v1_0.25" in out
        assert "mobilenet_v1_0.5" not in out.splitlines()[-1]

    def test_explore(self, cache, capsys):
        run(cache, "explore")
        out = capsys.readouterr().out
        assert "TRNs explored" in out
        assert "best TRN" in out

    def test_netcut(self, cache, capsys):
        run(cache, "netcut", "--deadline", "0.35",
            "--estimator", "profiler")
        out = capsys.readouterr().out
        assert "winner:" in out
        assert "blocks_removed" in out

    def test_netcut_online(self, cache, capsys):
        # the nested verb must not disturb the flat `netcut` form above
        run(cache, "netcut", "online", "--requests", "200")
        out = capsys.readouterr().out
        assert "static estimates" in out
        assert "online re-estimation" in out
        assert "re-estimations" in out
        assert "calibrated ladder" in out

    def test_estimators(self, cache, capsys):
        run(cache, "estimators")
        out = capsys.readouterr().out
        assert "profiler%" in out
        assert "mobilenet_v1_0.5" in out

    def test_pareto(self, cache, capsys):
        run(cache, "pareto", "--deadline", "0.35")
        out = capsys.readouterr().out
        assert "Pareto frontier:" in out
        assert "latency (ms)" in out
