"""Integration tests for the experiment workbench on a reduced setup."""

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, Workbench
from repro.train import PretrainConfig


@pytest.fixture(scope="module")
def wb(tmp_path_factory):
    """A workbench over the two smallest networks with tiny budgets."""
    config = ExperimentConfig(
        networks=("mobilenet_v1_0.25", "mobilenet_v1_0.5"),
        hands_images=60, head_epochs=8, deadline_ms=0.35)
    return Workbench(
        config,
        cache_dir=str(tmp_path_factory.mktemp("wbcache")),
        pretrain_config=PretrainConfig(n_images=40, epochs=1, batch_size=16))


class TestConfig:
    def test_digest_stable_and_distinct(self):
        a = ExperimentConfig()
        b = ExperimentConfig(deadline_ms=1.2)
        assert a.digest() == ExperimentConfig().digest()
        assert a.digest() != b.digest()


class TestArtifacts:
    def test_bases_cached(self, wb):
        a = wb.base("mobilenet_v1_0.25")
        assert a is wb.base("mobilenet_v1_0.25")
        assert len(wb.bases()) == 2

    def test_hands_split_sizes(self, wb):
        train, test = wb.hands()
        assert len(train) + len(test) == 60

    def test_base_latencies_ordered(self, wb):
        lat = wb.base_latencies()
        assert lat["mobilenet_v1_0.25"] < lat["mobilenet_v1_0.5"]

    def test_latency_dataset_covers_all_cuts(self, wb):
        points = wb.latency_dataset()
        assert len(points) == 26  # 13 cutpoints x 2 networks
        assert all(p.measured_ms > 0 for p in points)

    def test_transfer_model_has_new_head(self, wb):
        trn = wb.transfer_model("mobilenet_v1_0.25")
        assert "head_logits" in trn.nodes
        assert trn.shape_of("head_logits") == (5,)


class TestExperiments:
    def test_exploration_cached_on_disk(self, wb):
        first = wb.exploration()
        assert first.networks_trained == 28  # 2x (13 cuts + original)
        wb._exploration = None
        second = wb.exploration()
        assert second.records == first.records

    def test_netcut_profiler_runs(self, wb):
        result = wb.netcut("profiler")
        assert len(result.candidates) == 2
        best = result.best
        assert best.feasible
        assert best.estimated_latency_ms <= wb.config.deadline_ms

    def test_netcut_analytical_runs(self, wb):
        result = wb.netcut("analytical")
        assert result.estimator_name == "analytical"
        assert all(np.isfinite(c.estimated_latency_ms)
                   for c in result.candidates)

    def test_netcut_rejects_unknown_estimator(self, wb):
        with pytest.raises(ValueError):
            wb.netcut("psychic")

    def test_retrain_trn_returns_accuracy(self, wb):
        from repro.trim import enumerate_blockwise

        base = wb.base("mobilenet_v1_0.25")
        cut = enumerate_blockwise(base)[0]
        trn, accuracy = wb.retrain_trn(base, cut)
        assert 0.0 < accuracy <= 1.0
        assert trn.name.startswith("mobilenet_v1_0.25/")
