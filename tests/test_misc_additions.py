"""Tests for DOT export, device profiles and serialization properties."""

import numpy as np
from hypothesis import given, settings

from repro.device import DEVICE_PROFILES, agx_boosted, nano, network_latency, xavier
from repro.nn.serialize import load_network, save_network

from test_properties import chain_networks


class TestDotExport:
    def test_contains_nodes_and_edges(self, tiny_net):
        dot = tiny_net.to_dot()
        assert dot.startswith('digraph "tiny"')
        assert '"b1_conv"' in dot
        assert '"b1_relu" -> "b2_conv"' in dot

    def test_blocks_become_clusters(self, tiny_net):
        dot = tiny_net.to_dot()
        assert 'subgraph "cluster_b1"' in dot
        assert 'subgraph "cluster_b2"' in dot

    def test_roles_colored(self, tiny_net):
        dot = tiny_net.to_dot()
        assert "lightblue" in dot      # stem
        assert "lightyellow" in dot    # head

    def test_braces_balanced(self, tiny_net):
        dot = tiny_net.to_dot()
        assert dot.count("{") == dot.count("}")

    def test_zoo_network_exports(self):
        from repro.zoo import build_network

        dot = build_network("mobilenet_v2_1.0").build(0).to_dot()
        assert '"block1_dw"' in dot


class TestDeviceProfiles:
    def test_profiles_registry(self):
        assert set(DEVICE_PROFILES) == {"xavier", "nano", "agx_boosted"}
        for factory in DEVICE_PROFILES.values():
            assert factory().peak_gflops > 0

    def test_strength_ordering(self, tiny_net):
        weak = network_latency(tiny_net, nano()).total_ms
        mid = network_latency(tiny_net, xavier()).total_ms
        strong = network_latency(tiny_net, agx_boosted()).total_ms
        assert weak > mid > strong

    def test_names_distinct(self):
        names = {f().name for f in DEVICE_PROFILES.values()}
        assert len(names) == 3


class TestSerializeProperties:
    @given(net=chain_networks())
    @settings(max_examples=8, deadline=None)
    def test_random_chain_roundtrip(self, net, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("ser") / "net.npz")
        save_network(net, path)
        loaded = load_network(path)
        x = np.random.default_rng(0).normal(
            size=(2,) + net.input_shape).astype(np.float32)
        np.testing.assert_allclose(loaded.forward(x), net.forward(x),
                                   rtol=1e-5, atol=1e-6)

    @given(net=chain_networks())
    @settings(max_examples=8, deadline=None)
    def test_roundtrip_preserves_structure_metrics(self, net,
                                                   tmp_path_factory):
        path = str(tmp_path_factory.mktemp("ser2") / "net.npz")
        save_network(net, path)
        loaded = load_network(path)
        assert loaded.total_params() == net.total_params()
        assert loaded.total_flops() == net.total_flops()
        assert loaded.block_ids() == net.block_ids()
