"""Tests for whole-network serialization."""

import numpy as np
import pytest

from repro.nn import Conv2D, Network
from repro.nn.serialize import architecture_dict, load_network, save_network
from repro.trim import build_trn
from repro.zoo import build_network



class TestArchitectureDict:
    def test_contains_all_nodes(self, tiny_net):
        arch = architecture_dict(tiny_net)
        names = {n["name"] for n in arch["nodes"]}
        assert "b2_add" in names and "input" not in names
        assert arch["input_shape"] == [8, 8, 3]

    def test_preserves_metadata(self, tiny_net):
        arch = architecture_dict(tiny_net)
        by_name = {n["name"]: n for n in arch["nodes"]}
        assert by_name["b1_conv"]["block_id"] == "b1"
        assert by_name["logits"]["role"] == "head"
        assert by_name["b2_add"]["inputs"] == ["b1_relu", "b2_relu"]


class TestRoundTrip:
    def test_tiny_net_outputs_identical(self, tiny_net, small_images,
                                        tmp_path):
        path = str(tmp_path / "net.npz")
        save_network(tiny_net, path)
        loaded = load_network(path)
        np.testing.assert_allclose(loaded.forward(small_images),
                                   tiny_net.forward(small_images),
                                   rtol=1e-6)

    def test_zoo_network_roundtrip(self, tmp_path, rng):
        net = build_network("mobilenet_v2_1.0").build(3)
        path = str(tmp_path / "mnv2.npz")
        save_network(net, path)
        loaded = load_network(path)
        x = rng.normal(size=(2, 32, 32, 3)).astype(np.float32)
        np.testing.assert_allclose(loaded.forward(x), net.forward(x),
                                   rtol=1e-5, atol=1e-6)
        assert loaded.block_ids() == net.block_ids()

    def test_trn_roundtrip(self, tiny_net, small_images, tmp_path):
        trn = build_trn(tiny_net, "b2_add", 5)
        path = str(tmp_path / "trn.npz")
        save_network(trn, path)
        loaded = load_network(path)
        np.testing.assert_allclose(loaded.forward(small_images),
                                   trn.forward(small_images), rtol=1e-6)
        assert loaded.name == trn.name

    def test_running_stats_roundtrip(self, tiny_net, small_images,
                                     tmp_path):
        tiny_net.forward(small_images, training=True)  # move BN stats
        path = str(tmp_path / "bn.npz")
        save_network(tiny_net, path)
        loaded = load_network(path)
        np.testing.assert_allclose(
            loaded.nodes["b1_bn"].layer.running_mean,
            tiny_net.nodes["b1_bn"].layer.running_mean, rtol=1e-6)

    def test_unbuilt_rejected(self, tmp_path):
        net = Network("u", (4, 4, 1))
        net.add("c", Conv2D(2, 3))
        with pytest.raises(RuntimeError):
            save_network(net, str(tmp_path / "u.npz"))

    def test_latency_model_agrees_after_reload(self, tiny_net, tiny_device,
                                               tmp_path):
        from repro.device import network_latency

        path = str(tmp_path / "lat.npz")
        save_network(tiny_net, path)
        loaded = load_network(path)
        assert network_latency(loaded, tiny_device).total_ms == \
            pytest.approx(network_latency(tiny_net, tiny_device).total_ms,
                          rel=1e-9)
