"""Tests for repro.faults: injection, resilience, and the seed bugfix.

Everything runs over virtual time with explicit seeds; the subprocess
tests additionally pin ``PYTHONHASHSEED`` to prove the "reproducible"
seeds no longer depend on Python's per-process string-hash randomization.
"""

import json
import os
import subprocess
import sys

import pytest

from conftest import make_tiny_net
from repro.device.spec import DeviceSpec, stable_seed
from repro.faults import (
    SCENARIOS,
    BreakerEvent,
    ChaosScenario,
    CircuitBreaker,
    EstimatorBias,
    FaultInjector,
    HealthProbe,
    QueueSaturation,
    RungFailure,
    RungFailureError,
    StragglerStorm,
    ThermalThrottle,
    build_scenario,
)
from repro.serve import (
    Server,
    ServerConfig,
    TRNLadder,
    poisson_trace,
    uniform_trace,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")


@pytest.fixture(scope="module")
def device():
    return DeviceSpec(
        name="test-device", peak_gflops=10.0, bandwidth_gbps=1.0,
        launch_overhead_us=5.0, occupancy_flops=1e4, noise_std=0.005,
        straggler_prob=0.0, event_overhead_us=2.0)


@pytest.fixture(scope="module")
def ladder(device):
    return TRNLadder.from_base(make_tiny_net(), device, num_classes=5)


# ---------------------------------------------------------------------------
# satellite 1: stable_seed and the PYTHONHASHSEED regression
# ---------------------------------------------------------------------------
class TestStableSeed:
    def test_deterministic_and_distinct(self):
        assert stable_seed("a", "b") == stable_seed("a", "b")
        assert stable_seed("a", "b") != stable_seed("b", "a")
        # the separator keeps ("ab", "c") and ("a", "bc") apart
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_fits_numpy_seed_range(self):
        for parts in (("x",), ("net", "dev", 3), (1, 2, 3.5)):
            s = stable_seed(*parts)
            assert isinstance(s, int)
            assert 0 <= s < 2 ** 32

    @pytest.mark.parametrize("hashseed", ["0", "12345"])
    def test_measure_latency_ignores_hash_randomization(self, hashseed):
        """measure_latency must give identical results whatever hash seed
        the interpreter started with (the headline bug: ``hash((name,
        spec))`` seeded the measurement RNG, so "deterministic" latencies
        changed between processes)."""
        code = (
            "import json, sys\n"
            "sys.path.insert(0, %r)\n"
            "sys.path.insert(0, %r)\n"
            "from conftest import make_tiny_net\n"
            "from repro.device.spec import DeviceSpec\n"
            "from repro.device.runtime import measure_latency\n"
            "spec = DeviceSpec(name='test-device', peak_gflops=10.0,\n"
            "    bandwidth_gbps=1.0, launch_overhead_us=5.0,\n"
            "    occupancy_flops=1e4, noise_std=0.005,\n"
            "    straggler_prob=0.01, event_overhead_us=2.0)\n"
            "m = measure_latency(make_tiny_net(), spec, runs=20, warmup=5)\n"
            "print(json.dumps([m.mean_ms, m.std_ms]))\n"
        ) % (SRC, os.path.dirname(os.path.abspath(__file__)))
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        values = json.loads(out.stdout)
        # identical across parametrizations == identical across hash seeds
        if not hasattr(type(self), "_reference"):
            type(self)._reference = values
        assert values == type(self)._reference

    def test_rung_sampler_seed_is_stable(self, ladder):
        """TRNRung seeds its sampler from stable_seed, not hash()."""
        rung = ladder.rungs[0]
        expected = stable_seed(rung.name, rung.spec.name)
        import numpy as np

        reference = np.random.default_rng(expected).random()
        rung.reseed(expected)
        probe = np.random.default_rng(expected).random()
        assert probe == reference


# ---------------------------------------------------------------------------
# fault models
# ---------------------------------------------------------------------------
class TestFaultModels:
    def test_window_half_open(self):
        f = RungFailure(start_ms=10.0, duration_ms=5.0)
        assert not f.active(9.999)
        assert f.active(10.0)
        assert f.active(14.999)
        assert not f.active(15.0)

    def test_rung_filter(self):
        f = RungFailure(rungs=("a",))
        assert f.fails(0.0, "a")
        assert not f.fails(0.0, "b")
        unfiltered = RungFailure()
        assert unfiltered.fails(0.0, "anything")

    def test_straggler_storm_is_seeded(self):
        a = StragglerStorm(prob=0.5, scale=10.0)
        b = StragglerStorm(prob=0.5, scale=10.0)
        a.reseed(7)
        b.reseed(7)
        fa = [a.service_factor(0.0, "r", 1) for _ in range(50)]
        fb = [b.service_factor(0.0, "r", 1) for _ in range(50)]
        assert fa == fb
        assert any(f > 1.0 for f in fa) and any(f == 1.0 for f in fa)
        # spikes land in [1 + scale/2, 1 + scale]
        spikes = [f for f in fa if f > 1.0]
        assert all(6.0 <= f <= 11.0 for f in spikes)

    def test_thermal_ramp(self):
        f = ThermalThrottle(start_ms=100.0, duration_ms=100.0,
                            factor=3.0, ramp_ms=50.0)
        assert f.service_factor(99.0, "r", 1) == 1.0
        assert f.service_factor(100.0, "r", 1) == pytest.approx(1.0)
        assert f.service_factor(125.0, "r", 1) == pytest.approx(2.0)
        assert f.service_factor(150.0, "r", 1) == pytest.approx(3.0)
        assert f.service_factor(199.0, "r", 1) == pytest.approx(3.0)

    def test_estimator_bias_only_touches_estimates(self):
        f = EstimatorBias(factor=0.5)
        assert f.estimate_factor(0.0, "r") == 0.5
        assert f.service_factor(0.0, "r", 1) == 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            QueueSaturation(factor=0.0)
        with pytest.raises(ValueError):
            EstimatorBias(factor=-1.0)
        with pytest.raises(ValueError):
            RungFailure(duration_ms=0.0)


# ---------------------------------------------------------------------------
# the injector
# ---------------------------------------------------------------------------
class TestFaultInjector:
    def test_composition_is_multiplicative(self):
        inj = FaultInjector([ThermalThrottle(factor=2.0),
                             ThermalThrottle(factor=3.0)], seed=0)
        inj.tick(0.0)
        assert inj.service_factor("r", 1) == pytest.approx(6.0)

    def test_capacity_composes_as_minimum(self):
        inj = FaultInjector([QueueSaturation(factor=0.5),
                             QueueSaturation(factor=0.25)], seed=0)
        inj.tick(0.0)
        assert inj.capacity_factor() == 0.25
        assert inj.effective_capacity(100) == 25
        assert inj.effective_capacity(1) == 1      # never below one slot

    def test_tick_reports_activation_edges_once(self):
        inj = FaultInjector([RungFailure(start_ms=5.0, duration_ms=5.0)],
                            seed=0)
        assert inj.tick(0.0) == []
        opened = inj.tick(5.0)
        assert [e.phase for e in opened] == ["activate"]
        assert inj.tick(7.0) == []                 # still active, no edge
        closed = inj.tick(10.0)
        assert [e.phase for e in closed] == ["deactivate"]
        assert len(inj.events) == 2

    def test_reset_replays_identically(self):
        inj = FaultInjector([StragglerStorm(prob=0.5, scale=4.0)], seed=3)
        inj.tick(0.0)
        first = [inj.service_factor("r", 1) for _ in range(20)]
        inj.reset()
        inj.tick(0.0)
        assert [inj.service_factor("r", 1) for _ in range(20)] == first

    def test_wrapped_rung_perturbs_timing(self, ladder):
        inj = FaultInjector([ThermalThrottle(factor=2.0),
                             EstimatorBias(factor=0.5)], seed=0)
        wrapped = inj.wrap(ladder)
        inj.tick(0.0)
        ladder.reseed(0)
        wrapped.reseed(0)
        for plain, faulted in zip(ladder.rungs, wrapped.rungs):
            assert faulted.name == plain.name
            assert faulted.estimate_ms(1) == \
                pytest.approx(0.5 * plain.estimate_ms(1))
        # sampled service doubles (same RNG stream, factor 2)
        wrapped.reseed(0)
        doubled = wrapped.rungs[0].sample_service_ms(1)
        ladder.reseed(0)
        assert doubled == pytest.approx(2.0 * ladder.rungs[0]
                                        .sample_service_ms(1))

    def test_wrapped_rung_raises_on_failure(self, ladder):
        name = ladder.rungs[0].name
        inj = FaultInjector([RungFailure(rungs=(name,))], seed=0)
        wrapped = inj.wrap(ladder)
        inj.tick(0.0)
        target = next(r for r in wrapped.rungs if r.name == name)
        healthy = next(r for r in wrapped.rungs if r.name != name)
        with pytest.raises(RungFailureError):
            target.sample_service_ms(1)
        assert healthy.sample_service_ms(1) > 0

    def test_snapshot_and_report(self):
        inj = FaultInjector([RungFailure(start_ms=1.0, duration_ms=1.0)],
                            seed=9)
        inj.tick(1.5)
        snap = inj.snapshot()
        assert snap["seed"] == 9
        assert len(snap["active"]) == 1
        assert "activate" in inj.report()


# ---------------------------------------------------------------------------
# circuit breaker + health probe
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        br = CircuitBreaker("r", threshold=3, cooldown_ms=10.0)
        br.record_failure(0.0)
        br.record_failure(1.0)
        assert br.state == "closed" and br.allow(1.5)
        br.record_failure(2.0)
        assert br.state == "open"
        assert not br.allow(2.5)

    def test_success_resets_the_streak(self):
        br = CircuitBreaker("r", threshold=2, cooldown_ms=10.0)
        br.record_failure(0.0)
        br.record_success(1.0)
        br.record_failure(2.0)
        assert br.state == "closed"

    def test_half_open_probe_then_close(self):
        listener_events = []
        br = CircuitBreaker("r", threshold=1, cooldown_ms=10.0,
                            listener=listener_events.append)
        br.record_failure(0.0, "timeout")
        assert br.state == "open"
        assert not br.allow(5.0)                 # cooldown not elapsed
        assert br.allow(10.0)                    # probe slot granted
        assert br.state == "half-open"
        assert not br.allow(10.5)                # single probe in flight
        br.record_success(11.0)
        assert br.state == "closed"
        assert [e.to_state for e in listener_events] == \
            ["open", "half-open", "closed"]
        assert [e.to_state for e in br.events] == \
            ["open", "half-open", "closed"]
        assert isinstance(br.events[0], BreakerEvent)
        assert br.events[0].reason == "timeout"

    def test_half_open_failure_reopens_and_rearms_cooldown(self):
        br = CircuitBreaker("r", threshold=1, cooldown_ms=10.0)
        br.record_failure(0.0)
        assert br.allow(10.0)
        br.record_failure(11.0)
        assert br.state == "open"
        assert not br.allow(20.0)                # cooldown restarts at 11
        assert br.allow(21.0)

    def test_snapshot(self):
        br = CircuitBreaker("r", threshold=1, cooldown_ms=5.0)
        br.record_failure(3.0)
        snap = br.snapshot()
        assert snap["state"] == "open"
        assert snap["transitions"][0]["time_ms"] == 3.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker("r", threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker("r", cooldown_ms=0.0)


class TestHealthProbe:
    def test_healthy_ladder_probes_ok(self, ladder):
        ladder.reseed(0)
        results = HealthProbe().probe_ladder(ladder)
        assert len(results) == len(ladder)
        assert all(r.ok and r.error is None for r in results)

    def test_failed_rung_reports_error(self, ladder):
        inj = FaultInjector([RungFailure()], seed=0)
        wrapped = inj.wrap(ladder)
        inj.tick(0.0)
        results = HealthProbe().probe_ladder(wrapped)
        assert all(not r.ok and r.error == "rung-failure" for r in results)
        assert "FAIL" in str(results[0])

    def test_slow_factor_validated(self):
        with pytest.raises(ValueError):
            HealthProbe(slow_factor=1.0)


# ---------------------------------------------------------------------------
# scenarios
# ---------------------------------------------------------------------------
class TestScenarios:
    def test_builtins_build_and_describe(self):
        for name in SCENARIOS:
            sc = build_scenario(name, span_ms=100.0, seed=1,
                                rungs=("some-rung",))
            assert isinstance(sc, ChaosScenario)
            assert sc.faults
            assert name in sc.describe()

    def test_unknown_scenario(self):
        with pytest.raises(KeyError):
            build_scenario("nope", 100.0)

    def test_injector_is_fresh_per_call(self):
        sc = build_scenario("straggler-storm", 100.0, seed=2)
        assert sc.injector() is not sc.injector()


# ---------------------------------------------------------------------------
# engine resilience (end to end, tiny ladder)
# ---------------------------------------------------------------------------
def _serve(ladder, trace, faults=None, **cfg):
    config = ServerConfig(deadline_ms=trace[0].deadline_ms, execute=False,
                          seed=0, **cfg)
    server = Server(ladder, config, faults=faults)
    return server.run_trace(trace)


class TestEngineResilience:
    def test_timeouts_retry_on_a_faster_rung(self, ladder):
        span = 80.0
        trace = uniform_trace(60, 60 / (span / 1e3), 5.0, rng=0)
        inj = FaultInjector(
            [StragglerStorm(prob=0.9, scale=20.0, duration_ms=span,
                            rungs=(ladder.rungs[0].name,))], seed=0)
        result = _serve(ladder, trace, faults=inj, resilience=True,
                        adaptive=False, exec_timeout_factor=1.5)
        c = result.metrics.counters
        assert c["timeouts"].value > 0
        assert c["retries"].value >= c["timeouts"].value
        # retried batches completed on a faster rung than the pinned one
        assert any(r.rung != ladder.rungs[0].name
                   for r in result.completed)

    def test_breaker_opens_and_recovers(self, ladder):
        span = 80.0
        trace = uniform_trace(60, 60 / (span / 1e3), 5.0, rng=0)
        inj = FaultInjector(
            [RungFailure(start_ms=10.0, duration_ms=30.0,
                         rungs=(ladder.rungs[0].name,))], seed=0)
        result = _serve(ladder, trace, faults=inj, resilience=True,
                        adaptive=False, breaker_threshold=2,
                        breaker_cooldown_ms=5.0)
        c = result.metrics.counters
        assert c["breaker_opens"].value >= 1
        assert c["breaker_closes"].value >= 1      # half-open probe healed
        assert c["fault_events"].value == 2        # activate + deactivate
        # everything still finished: completed + dropped == admitted
        assert c["completed"].value + c["dropped"].value \
            == c["admitted"].value

    def test_all_rungs_failing_drops_instead_of_crashing(self, ladder):
        trace = uniform_trace(20, 2000.0, 5.0, rng=0)
        inj = FaultInjector([RungFailure()], seed=0)   # every rung dead
        result = _serve(ladder, trace, faults=inj, resilience=True)
        c = result.metrics.counters
        assert c["completed"].value == 0
        assert c["dropped"].value == c["admitted"].value > 0
        assert all(r.status == "dropped" for r in result.dropped)
        assert all(r.reject_reason == "rung-failed" for r in result.dropped)

    def test_unresilient_engine_crashes_on_rung_failure(self, ladder):
        trace = uniform_trace(5, 2000.0, 5.0, rng=0)
        inj = FaultInjector([RungFailure()], seed=0)
        with pytest.raises(RungFailureError):
            _serve(ladder, trace, faults=inj, resilience=False)

    def test_queue_saturation_rejects_overflow(self, ladder):
        # 40 near-simultaneous arrivals against 8 usable of 32 slots
        trace = uniform_trace(40, 2_000_000.0, 50.0, rng=0)
        inj = FaultInjector([QueueSaturation(factor=0.25)], seed=0)
        saturated = _serve(ladder, trace, faults=inj, resilience=True,
                           queue_capacity=32, admission_control=False)
        free = _serve(ladder, trace, resilience=True, queue_capacity=32,
                      admission_control=False)
        assert saturated.metrics.counters["rejected"].value \
            > free.metrics.counters["rejected"].value
        assert all(r.reject_reason == "queue-full"
                   for r in saturated.rejected)

    def test_estimator_bias_raises_drift(self, ladder):
        from repro.obs import DriftMonitor

        trace = uniform_trace(80, 4000.0, 5.0, rng=0)
        inj = FaultInjector([EstimatorBias(factor=0.4)], seed=0)
        drift = DriftMonitor(window=16, threshold=0.25, cooldown=8)
        config = ServerConfig(deadline_ms=5.0, execute=False, seed=0,
                              resilience=True)
        server = Server(ladder, config, drift=drift, faults=inj)
        server.run_trace(trace)
        # the planner thinks batches are 2.5x faster than they measure
        assert drift.events

    def test_determinism_under_faults(self, ladder):
        trace = poisson_trace(60, 3000.0, 5.0, rng=0)
        runs = []
        for _ in range(2):
            inj = FaultInjector([StragglerStorm(prob=0.4, scale=8.0)],
                                seed=5)
            result = _serve(ladder, trace, faults=inj, resilience=True)
            runs.append(json.dumps(result.metrics.snapshot(),
                                   sort_keys=True))
        assert runs[0] == runs[1]

    def test_breaker_listener_feeds_tracer(self, ladder):
        from repro.obs import Tracer

        span = 80.0
        trace = uniform_trace(60, 60 / (span / 1e3), 5.0, rng=0)
        inj = FaultInjector(
            [RungFailure(start_ms=10.0, duration_ms=30.0,
                         rungs=(ladder.rungs[0].name,))], seed=0)
        tracer = Tracer(capacity=4096)
        config = ServerConfig(deadline_ms=5.0, execute=False, seed=0,
                              resilience=True, adaptive=False,
                              breaker_threshold=2, breaker_cooldown_ms=5.0)
        server = Server(ladder, config, tracer=tracer, faults=inj)
        server.run_trace(trace)
        names = {s.name for s in tracer.spans()}
        assert {"breaker", "fault", "rung-failure"} <= names


# ---------------------------------------------------------------------------
# satellite 4: shutdown/drain accounting
# ---------------------------------------------------------------------------
class TestDrain:
    def test_stop_ms_drains_queue_as_drops(self, ladder):
        # all 50 requests arrive within one service time, so a backlog is
        # guaranteed to be sitting in the queue when the shutdown hits
        est = ladder.rungs[0].estimate_ms(1)
        trace = uniform_trace(50, 5e4 / est, 50.0, rng=0)
        config = ServerConfig(deadline_ms=50.0, execute=False, seed=0,
                              admission_control=False, max_batch=1)
        server = Server(ladder, config)
        result = server.run_trace(trace, stop_ms=2.5 * est)
        c = result.metrics.counters
        assert c["dropped"].value > 0
        assert c["completed"].value + c["dropped"].value \
            == c["admitted"].value
        assert all(r.reject_reason == "drained" for r in result.dropped)

    def test_drain_under_open_breaker(self, ladder):
        """Requests stuck behind a dead ladder at shutdown count as drops,
        not as lost requests."""
        trace = uniform_trace(30, 3000.0, 50.0, rng=0)
        inj = FaultInjector([RungFailure()], seed=0)
        config = ServerConfig(deadline_ms=50.0, execute=False, seed=0,
                              resilience=True, breaker_threshold=1,
                              admission_control=False)
        server = Server(ladder, config, faults=inj)
        result = server.run_trace(trace, stop_ms=2.0)
        c = result.metrics.counters
        assert c["completed"].value == 0
        assert c["breaker_opens"].value >= 1
        assert c["dropped"].value == c["admitted"].value > 0

    def test_engine_drain_is_idempotent(self, ladder):
        from repro.serve.engine import Engine
        from repro.serve.metrics import ServerMetrics
        from repro.serve.request import Request

        config = ServerConfig(deadline_ms=5.0, execute=False, seed=0)
        engine = Engine(ladder, config, ServerMetrics(5.0))
        engine.queue.push(Request(0, 0.0, 5.0))
        first = engine.drain(1.0)
        assert [r.rid for r in first] == [0]
        assert engine.drain(1.0) == []
        assert engine.metrics.counters["dropped"].value == 1


# ---------------------------------------------------------------------------
# satellites 2 + 3: span regressions
# ---------------------------------------------------------------------------
class TestSpanRegressions:
    def test_enqueue_spans_never_go_backwards(self, ladder):
        """The engine stamps enqueue spans with its clock; even when a
        request's arrival predates the clock (it waited behind a long
        batch), the span timeline stays monotone."""
        from repro.obs import Tracer

        tracer = Tracer(capacity=4096)
        trace = poisson_trace(80, 4000.0, 5.0, rng=0)
        config = ServerConfig(deadline_ms=5.0, execute=False, seed=0)
        server = Server(ladder, config, tracer=tracer)
        server.run_trace(trace)
        stamps = [s.ts_ms for s in tracer.spans() if s.name == "enqueue"]
        assert stamps == sorted(stamps)

    def test_direct_push_backdate_is_clamped(self):
        from repro.obs import Tracer
        from repro.serve import EDFQueue, Request

        tracer = Tracer(capacity=64)
        q = EDFQueue(capacity=8, tracer=tracer)
        q.push(Request(0, 10.0, 1.0), now_ms=10.0)
        q.push(Request(1, 2.0, 1.0))           # arrival 2 < last span 10
        stamps = [s.ts_ms for s in tracer.spans() if s.name == "enqueue"]
        assert stamps == [10.0, 10.0]

    def test_batch_span_carries_estimate_and_stop_reason(self, ladder):
        from repro.obs import Tracer

        tracer = Tracer(capacity=4096)
        trace = poisson_trace(40, 4000.0, 5.0, rng=0)
        config = ServerConfig(deadline_ms=5.0, execute=False, seed=0)
        server = Server(ladder, config, tracer=tracer)
        server.run_trace(trace)
        spans = [s for s in tracer.spans() if s.name == "batch"]
        assert spans
        for s in spans:
            assert s.args["est_ms"] > 0
            assert s.args["stop"] in ("deadline-fit", "max-batch",
                                      "queue-empty")
            assert s.args["size"] >= 1
