"""Unit tests for the safety-margin adapter."""

import pytest

from repro.netcut import MarginAdapter, run_netcut, violation_rate
from repro.netcut.algorithm import NetCutCandidate, NetCutResult

from test_netcut import FixedEstimator, dummy_retrain


class TestMarginAdapter:
    def test_inflates_estimates(self, tiny_net):
        inner = FixedEstimator(2.0, 0.5)
        wrapped = MarginAdapter(inner, margin=0.1)
        assert wrapped.estimate(tiny_net, None) == pytest.approx(2.2)

    def test_zero_margin_is_identity(self, tiny_net):
        inner = FixedEstimator(2.0, 0.5)
        wrapped = MarginAdapter(inner, margin=0.0)
        assert wrapped.estimate(tiny_net, None) == pytest.approx(2.0)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            MarginAdapter(FixedEstimator(1.0, 0.1), margin=-0.1)

    def test_name_encodes_margin(self):
        adapter = MarginAdapter(FixedEstimator(1.0, 0.1), margin=0.05)
        assert "5%" in adapter.name

    def test_margin_forces_deeper_cuts(self, tiny_net):
        """With a margin, the same deadline requires removing more."""
        plain = run_netcut([tiny_net], 2.2,
                           FixedEstimator(3.0, 0.5), dummy_retrain)
        margined = run_netcut([tiny_net], 2.2,
                              MarginAdapter(FixedEstimator(3.0, 0.5), 0.2),
                              dummy_retrain)
        assert (margined.candidates[0].blocks_removed
                >= plain.candidates[0].blocks_removed)


class TestViolationRate:
    def _result(self, measured):
        result = NetCutResult(1.0, "stub")
        for i, ms in enumerate(measured):
            result.candidates.append(NetCutCandidate(
                f"n{i}", f"n{i}/1", None, 0.9, 0.7,
                measured_latency_ms=ms))
        return result

    def test_counts_violations(self):
        result = self._result([0.8, 1.1, 0.9, 1.5])
        assert violation_rate(result, 1.0) == pytest.approx(0.5)

    def test_all_compliant(self):
        assert violation_rate(self._result([0.5, 0.9]), 1.0) == 0.0

    def test_nan_when_empty(self):
        import math

        assert math.isnan(violation_rate(self._result([]), 1.0))
