"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that fully offline environments without the ``wheel`` package can
still do an editable install via ``python setup.py develop`` (modern
``pip install -e .`` needs ``wheel`` to build a PEP 660 editable).
"""

from setuptools import setup

setup()
